//! The TCP server: a fixed worker pool multiplexing pipelined connections
//! over per-worker epoll event loops.
//!
//! One acceptor thread hands sockets round-robin to `workers` worker
//! threads (ringing the target worker's eventfd doorbell).  Each worker
//! registers **one** [`medley::ThreadHandle`] — one `TxManager` thread slot,
//! held for the server's lifetime — and multiplexes all of its connections
//! over it (thread-per-core style: the worker *is* the transaction thread,
//! so a command never crosses a thread boundary between decode and commit).
//! Requests are executed in arrival order per connection and responses are
//! written back in the same order, so clients may pipeline arbitrarily
//! deeply.
//!
//! # Readiness-driven multiplexing
//!
//! Each worker owns a **level-triggered** [`crate::sys::Epoll`] instance.
//! A connection's interest mask is a pure function of its state, recomputed
//! after every pump and pushed to the kernel (`EPOLL_CTL_MOD`) only when it
//! changes:
//!
//! * `EPOLLIN` is wanted unless the peer is gone (`eof`/`dead`), the inbound
//!   stream is poisoned, the write-side backpressure latch (`wpaused`) is
//!   set, or the read-side bound is hit (a complete frame is parked and the
//!   undecoded backlog is ≥ `rbuf_high`).  The old skip-flag checks became
//!   interest changes: a paused connection costs *nothing* until its
//!   watermark clears, instead of being polled and skipped every pass.
//! * `EPOLLOUT` is wanted exactly while response bytes are queued.  A short
//!   or `WouldBlock` write leaves bytes queued, which *is* the re-arm — the
//!   next `EPOLLOUT` event resumes the flush.
//!
//! Responses are encoded into a per-connection segment chain and flushed
//! with **vectored writes** (`writev`): one syscall covers up to
//! [`MAX_WRITE_IOVECS`] queued segments, and the saved-syscall tally is
//! reported through `STATS` ([`crate::proto::EventStats`]).
//!
//! Shutdown is a graceful drain: the acceptor stops, every doorbell rings,
//! every worker finishes executing the complete frames already buffered on
//! its connections, flushes its write chains, and only then closes the
//! sockets and drops its handle (flushing its statistics).  In durable mode
//! the epoch advancer is stopped *after* the workers, so every committed
//! update still has a ticking clock while requests are in flight.

use crate::proto::{
    self, EventStats, LoadStats, MetricsReply, Request, Response, TraceReply, WorkerEvents,
};
use crate::store::{Cmd, ErrCode, Store, StoreConfig};
use crate::sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::telemetry::{
    self, MetricsExporter, Telemetry, TelemetryConfig, PHASE_DECODE, PHASE_EPOLL_WAIT,
    PHASE_EXECUTE, PHASE_FLUSH,
};
use medley::util::CachePadded;
use medley::{ThreadHandle, TxManager};
use obs::TraceRecord;
use pmem::EpochAdvancer;
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port; see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (= `TxManager` slots held; each multiplexes any number
    /// of connections).
    pub workers: usize,
    /// The store the workers execute against.
    pub store: StoreConfig,
    /// How long [`Server::shutdown`] lets the drain run before force-closing
    /// connections that still have unflushed output.
    pub drain_deadline: Duration,
    /// Admission-control and backpressure watermarks.
    pub overload: OverloadConfig,
    /// Telemetry: per-opcode latency/abort/retry series, slow-request
    /// tracing, and the optional Prometheus exposition listener.
    pub telemetry: TelemetryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            store: StoreConfig::default(),
            drain_deadline: Duration::from_secs(5),
            overload: OverloadConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Admission-control watermarks: every buffer a peer can grow has a bound,
/// and crossing a bound changes behavior (drop read interest, shed) instead
/// of allocating.  High/low pairs give hysteresis so the server does not
/// flap at a boundary.
///
/// With these bounds, per-connection memory is `O(rbuf_high + wbuf_high +
/// MAX_FRAME)` regardless of offered load: a peer that will not drain its
/// responses loses `EPOLLIN` interest; a peer that floods requests loses it
/// once a complete frame is parked; and a worker whose total backlog passes
/// `shed_high` refuses to *start* transactional work (cheap shed responses)
/// until it drains below `shed_low`.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Stop reading a connection whose unflushed response bytes exceed this.
    pub wbuf_high: usize,
    /// Resume reading once unflushed response bytes drain below this.
    pub wbuf_low: usize,
    /// Stop reading a connection whose undecoded inbound backlog exceeds
    /// this *and* already holds a complete frame (a partial frame keeps
    /// reading so it can finish: frames are bounded by
    /// [`proto::MAX_FRAME`], so this cannot unbound the buffer).
    pub rbuf_high: usize,
    /// Frames executed from one connection per worker pass — bounds how
    /// long one deeply-pipelined peer can monopolize its worker before the
    /// other connections get their pumps.
    pub conn_inflight: usize,
    /// Worker backlog bytes (buffered requests + responses across its
    /// connections) at which transactional commands start being shed with
    /// [`ErrCode::Overload`].  `0` sheds every transactional command — a
    /// deterministic mode the overload tests use.
    pub shed_high: usize,
    /// Worker backlog bytes below which shedding stops.
    pub shed_low: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            wbuf_high: 256 << 10,
            wbuf_low: 64 << 10,
            rbuf_high: 256 << 10,
            conn_inflight: 64,
            shed_high: 1 << 20,
            shed_low: 256 << 10,
        }
    }
}

/// Shared load/admission counters, written by workers and the acceptor,
/// reported through `STATS` (and [`Server::load_stats`]).
struct ServerLoad {
    shed: AtomicU64,
    accept_retries: AtomicU64,
    peak_backlog: AtomicU64,
    /// Per-worker backlog bytes, one padded slot each (no false sharing on
    /// the per-pass store).
    backlog: Vec<CachePadded<AtomicU64>>,
}

impl ServerLoad {
    fn new(workers: usize) -> Self {
        Self {
            shed: AtomicU64::new(0),
            accept_retries: AtomicU64::new(0),
            peak_backlog: AtomicU64::new(0),
            backlog: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_accept_retry(&self) {
        self.accept_retries.fetch_add(1, Ordering::Relaxed);
    }

    fn set_backlog(&self, slot: usize, bytes: u64) {
        self.backlog[slot].store(bytes, Ordering::Relaxed);
        let total: u64 = self.backlog.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        self.peak_backlog.fetch_max(total, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LoadStats {
        LoadStats {
            shed_requests: self.shed.load(Ordering::Relaxed),
            inflight_bytes: self.backlog.iter().map(|b| b.load(Ordering::Relaxed)).sum(),
            peak_inflight_bytes: self.peak_backlog.load(Ordering::Relaxed),
            accept_retries: self.accept_retries.load(Ordering::Relaxed),
        }
    }
}

/// One worker's event-loop counters (padded slot: each worker writes only
/// its own cache line).
struct WorkerEventCounters {
    epoll_waits: AtomicU64,
    events_dispatched: AtomicU64,
    spurious_wakeups: AtomicU64,
    writev_saved: AtomicU64,
}

impl WorkerEventCounters {
    fn new() -> Self {
        Self {
            epoll_waits: AtomicU64::new(0),
            events_dispatched: AtomicU64::new(0),
            spurious_wakeups: AtomicU64::new(0),
            writev_saved: AtomicU64::new(0),
        }
    }

    fn note_writev(&self, iovecs: usize) {
        if iovecs > 1 {
            self.writev_saved
                .fetch_add((iovecs - 1) as u64, Ordering::Relaxed);
        }
    }

    fn note_pass(&self, dispatched: u64, spurious: u64) {
        self.epoll_waits.fetch_add(1, Ordering::Relaxed);
        if dispatched > 0 {
            self.events_dispatched
                .fetch_add(dispatched, Ordering::Relaxed);
        }
        if spurious > 0 {
            self.spurious_wakeups.fetch_add(spurious, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> WorkerEvents {
        WorkerEvents {
            epoll_waits: self.epoll_waits.load(Ordering::Relaxed),
            events_dispatched: self.events_dispatched.load(Ordering::Relaxed),
            spurious_wakeups: self.spurious_wakeups.load(Ordering::Relaxed),
            writev_saved: self.writev_saved.load(Ordering::Relaxed),
        }
    }
}

/// Event-loop counters, one padded slot per worker, reported through
/// `STATS` (and [`Server::event_stats`]) both aggregated and per worker —
/// the per-worker rows are how an unbalanced accept distribution or one
/// spinning worker shows up.
struct ServerEvents {
    workers: Vec<CachePadded<WorkerEventCounters>>,
}

impl ServerEvents {
    fn new(workers: usize) -> Self {
        Self {
            workers: (0..workers)
                .map(|_| CachePadded::new(WorkerEventCounters::new()))
                .collect(),
        }
    }

    fn worker(&self, slot: usize) -> &WorkerEventCounters {
        &self.workers[slot]
    }

    fn snapshot(&self) -> EventStats {
        let per_worker: Vec<WorkerEvents> = self.workers.iter().map(|w| w.snapshot()).collect();
        EventStats {
            epoll_waits: per_worker.iter().map(|w| w.epoll_waits).sum(),
            events_dispatched: per_worker.iter().map(|w| w.events_dispatched).sum(),
            spurious_wakeups: per_worker.iter().map(|w| w.spurious_wakeups).sum(),
            writev_saved: per_worker.iter().map(|w| w.writev_saved).sum(),
            per_worker,
        }
    }
}

/// Escalating sleep for transient `accept(2)` failures (`EMFILE`, `ENFILE`,
/// `ECONNABORTED`, …).  The listener must never be torn down for these: the
/// condition clears when connections close, and an acceptor that dies turns
/// a load spike into a permanent outage.
struct AcceptBackoff {
    delay: Duration,
}

impl AcceptBackoff {
    const INITIAL: Duration = Duration::from_millis(1);
    const MAX: Duration = Duration::from_millis(100);

    fn new() -> Self {
        Self {
            delay: Self::INITIAL,
        }
    }

    fn reset(&mut self) {
        self.delay = Self::INITIAL;
    }

    /// Returns the delay to sleep now and doubles the next one (capped).
    fn advance(&mut self) -> Duration {
        let now = self.delay;
        self.delay = (self.delay * 2).min(Self::MAX);
        now
    }

    /// Sleeps the current delay, escalating for the next failure.
    fn wait(&mut self) {
        let d = self.advance();
        std::thread::sleep(d);
    }
}

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 64 << 10;

/// `epoll_wait` records fetched per pass.
const EVENT_BATCH: usize = 256;

/// Poll timeout while idle.  The doorbell interrupts it for handoffs and
/// shutdown, and any socket event interrupts it for traffic, so this only
/// bounds how stale the shed latch / backlog gauge can get on a quiet
/// worker.
const IDLE_POLL_MS: i32 = 100;

/// Poll timeout while draining for shutdown: short, so the quiesce check
/// and drain deadline are reevaluated promptly.
const DRAIN_POLL_MS: i32 = 1;

/// Epoll token reserved for the worker's doorbell (connection slots use
/// their slab index, which can never reach this).
const WAKE_TOKEN: u64 = u64::MAX;

/// Segment target for the response chain: frames append to the open tail
/// segment until it reaches this size, so tiny responses coalesce instead of
/// each becoming its own iovec.
const WRITE_SEGMENT_BYTES: usize = 16 << 10;

/// Maximum iovecs per `writev` — comfortably under every Unix's `IOV_MAX`
/// (≥ 1024) while keeping the per-call stack cost small.
pub const MAX_WRITE_IOVECS: usize = 64;

/// Queued response bytes awaiting the socket: a chain of closed segments
/// plus an open tail that response frames append to.  Flushed with vectored
/// writes; partially-written head segments are tracked by offset, not
/// memmoved.
struct WriteChain {
    segs: VecDeque<Vec<u8>>,
    /// Consumed bytes of `segs.front()`.
    head: usize,
    /// The open segment new frames are encoded into.
    tail: Vec<u8>,
    /// Total unflushed bytes across `segs` and `tail`.
    len: usize,
}

impl WriteChain {
    fn new() -> Self {
        Self {
            segs: VecDeque::new(),
            head: 0,
            tail: Vec::new(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends whatever `f` encodes into the open tail segment, sealing the
    /// tail into the chain once it reaches the segment target.
    fn encode_with(&mut self, f: impl FnOnce(&mut Vec<u8>)) {
        let before = self.tail.len();
        f(&mut self.tail);
        self.len += self.tail.len() - before;
        if self.tail.len() >= WRITE_SEGMENT_BYTES {
            self.segs.push_back(std::mem::take(&mut self.tail));
        }
    }

    /// Fills `iovs` with up to [`MAX_WRITE_IOVECS`] slices covering the
    /// queued bytes, oldest first.
    fn gather<'a>(&'a self, iovs: &mut Vec<IoSlice<'a>>) {
        iovs.clear();
        for (i, seg) in self.segs.iter().enumerate() {
            if iovs.len() == MAX_WRITE_IOVECS {
                return;
            }
            let from = if i == 0 { self.head } else { 0 };
            if from < seg.len() {
                iovs.push(IoSlice::new(&seg[from..]));
            }
        }
        if iovs.len() < MAX_WRITE_IOVECS {
            // With no closed segments, `head` tracks consumption of the
            // open tail itself.
            let from = if self.segs.is_empty() { self.head } else { 0 };
            if from < self.tail.len() {
                iovs.push(IoSlice::new(&self.tail[from..]));
            }
        }
    }

    /// Marks `n` queued bytes as written, releasing exhausted segments.
    fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.len);
        self.len -= n;
        while n > 0 {
            if let Some(front) = self.segs.front() {
                let avail = front.len() - self.head;
                if n >= avail {
                    n -= avail;
                    self.head = 0;
                    self.segs.pop_front();
                } else {
                    self.head += n;
                    n = 0;
                }
            } else {
                // Only the open tail remains; it is consumed in order too.
                debug_assert!(n <= self.tail.len() - self.head);
                self.head += n;
                if self.head == self.tail.len() {
                    self.tail.clear();
                    self.head = 0;
                }
                n = 0;
            }
        }
        if self.len == 0 {
            self.head = 0;
            self.segs.clear();
            self.tail.clear();
        }
    }
}

/// One multiplexed connection's state.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes; `rpos` marks how far frames have been consumed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Outbound response frames awaiting the socket.
    chain: WriteChain,
    /// The interest mask currently registered with the worker's epoll.
    interest: u32,
    /// Readiness bits delivered this pass (consumed by the service loop).
    ready: u32,
    /// The connection holds a complete, executable frame but its last
    /// execute pump stopped early (per-pass budget or write-buffer bound):
    /// the worker must run another pass without waiting for socket events.
    exec_pending: bool,
    /// Peer closed its sending side (we still flush what we owe).
    eof: bool,
    /// The inbound stream is unrecoverable (oversized length prefix): no
    /// more reading or decoding, but responses to requests that already
    /// executed are still flushed before the socket closes.
    poisoned: bool,
    /// Connection is unusable (I/O error); dropped immediately.
    dead: bool,
    /// Backpressure latch: reading is paused because the peer stopped
    /// draining its responses (unflushed bytes crossed `wbuf_high`); cleared
    /// once they fall below `wbuf_low`.
    wpaused: bool,
    /// When the most recent socket read delivered bytes — the queue-time
    /// anchor for slow-request tracing (how long a frame sat buffered
    /// before its execute pump reached it).
    last_read: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            chain: WriteChain::new(),
            interest: 0,
            ready: 0,
            exec_pending: false,
            eof: false,
            poisoned: false,
            dead: false,
            wpaused: false,
            last_read: None,
        })
    }

    /// Whether every byte owed to the peer has hit the socket.
    fn flushed(&self) -> bool {
        self.chain.is_empty()
    }

    /// Response bytes accepted for this peer but not yet on the socket.
    fn unflushed(&self) -> usize {
        self.chain.len
    }

    /// Undecoded inbound bytes.
    fn inbound_backlog(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Bytes this connection holds in either direction — its contribution
    /// to the worker backlog the shed watermark gates on.
    fn backlog_bytes(&self) -> usize {
        self.inbound_backlog() + self.unflushed()
    }

    /// Rolls the write-side backpressure latch forward (hysteresis over
    /// `wbuf_high`/`wbuf_low`).
    fn update_wpause(&mut self, ov: &OverloadConfig) {
        if self.wpaused {
            if self.unflushed() <= ov.wbuf_low {
                self.wpaused = false;
            }
        } else if self.unflushed() >= ov.wbuf_high {
            self.wpaused = true;
        }
    }

    /// The interest mask this connection's state calls for.  Backpressure
    /// is expressed here: a paused or bounded connection simply stops
    /// asking for `EPOLLIN`, and queued response bytes are what ask for
    /// `EPOLLOUT`.
    fn desired_interest(&self, ov: &OverloadConfig) -> u32 {
        if self.dead {
            return 0;
        }
        let mut mask = 0;
        let read_bounded = self.inbound_backlog() >= ov.rbuf_high && self.has_pending_frame();
        if !self.eof && !self.poisoned && !self.wpaused && !read_bounded {
            mask |= EPOLLIN;
        }
        if !self.chain.is_empty() {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Moves queued responses toward the socket with vectored writes.
    /// Returns whether bytes were written.
    fn pump_write(&mut self, ev: &WorkerEventCounters) -> bool {
        let mut progress = false;
        while !self.chain.is_empty() {
            let mut iovs: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_WRITE_IOVECS.min(8));
            self.chain.gather(&mut iovs);
            let res = if iovs.len() == 1 {
                self.stream.write(&iovs[0])
            } else {
                self.stream.write_vectored(&iovs)
            };
            match res {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    ev.note_writev(iovs.len());
                    self.chain.advance(n);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Pulls available bytes off the socket, honoring the backpressure
    /// watermarks.  Returns whether bytes were read.
    fn pump_read(&mut self, ov: &OverloadConfig) -> bool {
        if self.eof || self.dead || self.poisoned {
            return false;
        }
        // Write-side backpressure: a peer that will not drain its responses
        // stops being read (and therefore stops being served) until it
        // catches up — its TCP window, not our heap, absorbs the overload.
        self.update_wpause(ov);
        if self.wpaused {
            return false;
        }
        // Read-side bound: with a complete frame already parked, more input
        // only deepens the queue.  Without one we keep reading so a partial
        // frame can complete (bounded by MAX_FRAME, enforced on decode).
        if self.inbound_backlog() >= ov.rbuf_high && self.has_pending_frame() {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                    if n < chunk.len() {
                        break;
                    }
                    if self.inbound_backlog() >= ov.rbuf_high && self.has_pending_frame() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if progress {
            self.last_read = Some(Instant::now());
        }
        progress
    }

    /// Decodes and executes buffered complete frames — up to the per-pass
    /// budget and the write-buffer bound, shedding transactional commands
    /// while the worker is over its backlog watermark.  Returns whether any
    /// frame was served.
    #[allow(clippy::too_many_arguments)]
    fn pump_execute(
        &mut self,
        store: &Store,
        h: &mut ThreadHandle,
        ov: &OverloadConfig,
        shedding: bool,
        load: &ServerLoad,
        events: &ServerEvents,
        started: Instant,
        tel: Option<&WorkerTel<'_>>,
    ) -> bool {
        if self.poisoned {
            return false;
        }
        let mut progress = false;
        let mut served = 0usize;
        // Phase tallies for this pump, flushed to the registry once at the
        // end (two relaxed adds per pump, not two per frame).
        let mut decode_acc = 0u64;
        let mut exec_acc = 0u64;
        loop {
            // Per-connection execution bounds: a deeply-pipelined peer gets
            // at most `conn_inflight` frames per pass, and never more
            // responses than `wbuf_high` can hold (unserved frames stay
            // buffered and count toward the backlog).
            if served >= ov.conn_inflight || self.unflushed() >= ov.wbuf_high {
                break;
            }
            let t_decode = tel.map(|_| Instant::now());
            let frame = match proto::take_frame(&self.rbuf, &mut self.rpos) {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    // A length prefix past MAX_FRAME: resynchronization is
                    // impossible.  Poison (not kill) the connection so the
                    // responses of requests that already executed are still
                    // flushed before the socket closes.
                    self.poisoned = true;
                    break;
                }
            };
            progress = true;
            served += 1;
            match proto::decode_request(frame) {
                Ok((req_id, req)) => {
                    let opcode = proto::request_opcode(&req);
                    let t_exec = tel.map(|_| Instant::now());
                    let resp = match &req {
                        // Shed only what is expensive: a transactional
                        // command costs a full retry loop, while a
                        // single-key op costs about as much as encoding the
                        // shed response would — refusing those buys nothing.
                        // Admin commands always run (STATS is how overload
                        // is diagnosed).  The shed happens *before* `exec`,
                        // so a refused TRANSFER has zero partial effects,
                        // and the response is encoded in arrival order like
                        // any other, preserving pipelined req-id ordering.
                        Request::Cmd(cmd)
                            if shedding
                                && matches!(
                                    cmd,
                                    Cmd::Cas { .. }
                                        | Cmd::MGet(_)
                                        | Cmd::MSet(_)
                                        | Cmd::Transfer { .. }
                                        | Cmd::Batch(_)
                                        | Cmd::CasB { .. }
                                        | Cmd::MGetB(_)
                                        | Cmd::MSetB(_)
                                        | Cmd::Scan { .. }
                                ) =>
                        {
                            load.note_shed();
                            Response::Err(ErrCode::Overload)
                        }
                        Request::Cmd(cmd) => match store.exec(h, cmd) {
                            Ok(out) => Response::Ok(out),
                            Err(e) => Response::Err(e),
                        },
                        Request::Stats => {
                            let mut s = store.stats(h);
                            s.uptime_secs = started.elapsed().as_secs();
                            s.load = Some(load.snapshot());
                            s.events = Some(events.snapshot());
                            Response::Stats(s)
                        }
                        Request::Sync => Response::Synced(store.sync()),
                        // Fold-on-read: the registry and trace rings are
                        // only aggregated when somebody asks.  With
                        // telemetry disabled both answer empty rather than
                        // erroring, so probes are cheap either way.
                        Request::Metrics => Response::Metrics(match tel {
                            Some(wt) => wt.tel.metrics_reply(),
                            None => MetricsReply::default(),
                        }),
                        Request::Trace => Response::Trace(match tel {
                            Some(wt) => wt.tel.trace_reply(),
                            None => TraceReply::default(),
                        }),
                    };
                    self.chain
                        .encode_with(|buf| proto::encode_response(buf, req_id, opcode, &resp));
                    if let (Some(wt), Some(t_decode), Some(t_exec)) = (tel, t_decode, t_exec) {
                        // Frame picked up → decoded → response encoded: the
                        // decode/execute split feeds phase accounting; the
                        // execute span is the per-opcode service time.
                        let done = Instant::now();
                        decode_acc += (t_exec - t_decode).as_nanos() as u64;
                        let exec_ns = (done - t_exec).as_nanos() as u64;
                        exec_acc += exec_ns;
                        if let Some(op) = telemetry::op_index(opcode) {
                            let retries = h.take_last_attempts().saturating_sub(1);
                            let wm = wt.tel.worker(wt.slot);
                            wm.record_op(op, exec_ns, retries);
                            if let Response::Err(e) = &resp {
                                wm.record_error(op, telemetry::error_index(*e));
                            }
                            if exec_ns >= wt.tel.slow_ns() {
                                let queue_ns = self.last_read.map_or(0, |r| {
                                    t_decode.saturating_duration_since(r).as_nanos() as u64
                                });
                                wt.tel.trace(wt.slot).push(TraceRecord {
                                    opcode,
                                    status: proto::response_status(&resp),
                                    req_id: u64::from(req_id),
                                    queue_ns,
                                    exec_ns,
                                    retries,
                                });
                            }
                        }
                    }
                }
                Err(_) => {
                    // Frame boundaries are intact, so answer and carry on.
                    let req_id = frame
                        .get(..4)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                        .unwrap_or(0);
                    let opcode = frame.get(4).copied().unwrap_or(0);
                    self.chain.encode_with(|buf| {
                        proto::encode_response(
                            buf,
                            req_id,
                            opcode,
                            &Response::Err(ErrCode::Malformed),
                        )
                    });
                }
            }
        }
        // Reclaim consumed prefix once it dominates the buffer.
        if self.rpos > 4096 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        if let Some(wt) = tel {
            let wm = wt.tel.worker(wt.slot);
            wm.add_phase_ns(PHASE_DECODE, decode_acc);
            wm.add_phase_ns(PHASE_EXECUTE, exec_acc);
        }
        progress
    }

    /// [`Conn::pump_write`] wrapped in flush-phase accounting when
    /// telemetry is on (zero clock reads when it is off).
    fn pump_write_timed(&mut self, ev: &WorkerEventCounters, tel: Option<&WorkerTel<'_>>) -> bool {
        match tel {
            None => self.pump_write(ev),
            Some(wt) => {
                let t = Instant::now();
                let progress = self.pump_write(ev);
                wt.tel
                    .worker(wt.slot)
                    .add_phase_ns(PHASE_FLUSH, t.elapsed().as_nanos() as u64);
                progress
            }
        }
    }

    /// Whether another execute pump could make progress right now (used to
    /// schedule zero-timeout passes for leftover budgeted work).
    fn can_execute(&self, ov: &OverloadConfig) -> bool {
        !self.poisoned && self.unflushed() < ov.wbuf_high && self.has_pending_frame()
    }

    /// Whether the connection is finished and can be dropped.
    fn finished(&self) -> bool {
        self.dead
            || (self.poisoned && self.flushed())
            || (self.eof && self.flushed() && !self.has_pending_frame())
    }

    fn has_pending_frame(&self) -> bool {
        let mut pos = self.rpos;
        matches!(proto::take_frame(&self.rbuf, &mut pos), Ok(Some(_)))
    }
}

/// One worker's view of the shared [`Telemetry`]: its own slot for the
/// allocation-free write path plus the shared state for the fold-on-read
/// admin commands.
struct WorkerTel<'a> {
    tel: &'a Telemetry,
    slot: usize,
}

struct WorkerShared {
    store: Arc<Store>,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    wake: Arc<WakeFd>,
    stop: Arc<AtomicBool>,
    ov: OverloadConfig,
    load: Arc<ServerLoad>,
    events: Arc<ServerEvents>,
    tel: Option<Arc<Telemetry>>,
    started: Instant,
}

fn worker_loop(shared: WorkerShared, drain_deadline: Duration, slot: usize) {
    let WorkerShared {
        store,
        inbox,
        wake,
        stop,
        ov,
        load,
        events,
        tel,
        started,
    } = shared;
    let wt = tel.as_deref().map(|t| WorkerTel { tel: t, slot });
    let mut h = store.manager().register();
    let epoll = Epoll::new().expect("epoll_create1 failed");
    epoll
        .add(wake.as_raw_fd(), EPOLLIN, WAKE_TOKEN)
        .expect("registering worker doorbell failed");
    // Connection slab: the slot index doubles as the epoll token, so one
    // readiness record maps to its connection without a lookup table.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut evbuf = vec![EpollEvent::zeroed(); EVENT_BATCH];
    let mut draining_since: Option<Instant> = None;
    // Leftover executable frames from a budget-bounded pass: the next wait
    // must not block on the kernel while decoded work is already parked.
    let mut work_pending = false;
    // Shed latch with hysteresis over this worker's backlog.  `shed_high == 0`
    // starts (and stays) shedding — the deterministic test mode.
    let mut shedding = ov.shed_high == 0;
    loop {
        // Adopt handed-off connections (the acceptor rang the doorbell).
        for stream in inbox.lock().unwrap().drain(..) {
            if let Ok(mut c) = Conn::new(stream) {
                let idx = free.pop().unwrap_or_else(|| {
                    conns.push(None);
                    conns.len() - 1
                });
                c.interest = EPOLLIN;
                match epoll.add(c.stream.as_raw_fd(), EPOLLIN, idx as u64) {
                    Ok(()) => conns[idx] = Some(c),
                    Err(_) => free.push(idx), // conn drops (and closes) here
                }
            }
        }

        let timeout = if work_pending {
            0
        } else if stop.load(Ordering::Acquire) {
            DRAIN_POLL_MS
        } else {
            IDLE_POLL_MS
        };
        let t_wait = wt.as_ref().map(|_| Instant::now());
        let n = epoll.wait(&mut evbuf, timeout).unwrap_or(0);
        if let (Some(wt), Some(t)) = (&wt, t_wait) {
            // Includes idle poll timeouts by design: the epoll_wait share
            // of a worker's time IS its idle fraction.
            wt.tel
                .worker(slot)
                .add_phase_ns(PHASE_EPOLL_WAIT, t.elapsed().as_nanos() as u64);
        }

        // Deliver readiness to the slab (the doorbell only needs draining:
        // its payload — new conns or the stop flag — is read elsewhere).
        let mut dispatched = 0u64;
        for ev in &evbuf[..n] {
            let token = { ev.data };
            if token == WAKE_TOKEN {
                wake.drain();
                continue;
            }
            if let Some(Some(conn)) = conns.get_mut(token as usize) {
                conn.ready = ev.events;
                dispatched += 1;
            }
        }

        // Service pass: pump only connections with readiness or parked
        // executable frames.  Order per conn: flush first (frees write-
        // buffer budget), then read, then execute, then flush what execute
        // produced.
        let mut progress = false;
        let mut spurious = 0u64;
        let mut backlog = 0u64;
        work_pending = false;
        let ev = events.worker(slot);
        for (idx, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            let bits = std::mem::take(&mut conn.ready);
            let mut moved = false;
            if bits & EPOLLOUT != 0 {
                moved |= conn.pump_write_timed(ev, wt.as_ref());
            }
            if bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0 {
                moved |= conn.pump_read(&ov);
            }
            if bits != 0 || conn.exec_pending {
                moved |= conn.pump_execute(
                    &store,
                    &mut h,
                    &ov,
                    shedding,
                    &load,
                    &events,
                    started,
                    wt.as_ref(),
                );
                moved |= conn.pump_write_timed(ev, wt.as_ref());
            }
            if bits != 0 && !moved {
                spurious += 1;
            }
            progress |= moved;
            conn.update_wpause(&ov);
            conn.exec_pending = conn.can_execute(&ov);
            work_pending |= conn.exec_pending;
            if conn.finished() {
                // Dropping the stream closes the fd, which deregisters it
                // from the epoll set implicitly.
                *slot = None;
                free.push(idx);
                continue;
            }
            // Re-arm: push the recomputed interest mask only on change.
            let want = conn.desired_interest(&ov);
            if want != conn.interest {
                let fd = conn.stream.as_raw_fd();
                if epoll.modify(fd, want, idx as u64).is_err() {
                    *slot = None;
                    free.push(idx);
                    continue;
                }
                conn.interest = want;
            }
            backlog += conn.backlog_bytes() as u64;
        }
        ev.note_pass(dispatched, spurious);

        load.set_backlog(slot, backlog);
        if backlog >= ov.shed_high as u64 {
            shedding = true;
        } else if backlog <= ov.shed_low as u64 && ov.shed_high > 0 {
            shedding = false;
        }

        if stop.load(Ordering::Acquire) {
            let deadline = *draining_since.get_or_insert_with(Instant::now) + drain_deadline;
            // Drain: requests already received keep being served, but once
            // nothing is buffered in either direction the sockets close —
            // we do not wait for peers to hang up.
            let live = conns.iter().flatten();
            let quiesced = !progress
                && conns
                    .iter()
                    .flatten()
                    .all(|c| c.flushed() && !c.has_pending_frame());
            let empty = live.count() == 0;
            if empty || quiesced || Instant::now() > deadline {
                break;
            }
        }
    }
    load.set_backlog(slot, 0);
    // `h` drops here: unwind-safe stats flush for this worker slot.
}

/// A running kvstore server (see the module docs).
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    wakes: Vec<Arc<WakeFd>>,
    store: Arc<Store>,
    load: Arc<ServerLoad>,
    events: Arc<ServerEvents>,
    tel: Option<Arc<Telemetry>>,
    exporter: Option<MetricsExporter>,
    advancer: Option<EpochAdvancer>,
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting.
    pub fn start(cfg: &ServerConfig) -> std::io::Result<Self> {
        assert!(cfg.workers > 0, "server needs at least one worker");
        // One slot per worker plus slack for in-process admin/test handles
        // on the same manager.
        let mgr = TxManager::with_max_threads(cfg.workers + 8);
        let (store, advancer) = Store::new(mgr, &cfg.store)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let store = Arc::new(store);
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let load = Arc::new(ServerLoad::new(cfg.workers));
        let events = Arc::new(ServerEvents::new(cfg.workers));
        let tel = cfg
            .telemetry
            .enabled
            .then(|| Arc::new(Telemetry::new(&cfg.telemetry, cfg.workers)));
        let exporter = match (&tel, &cfg.telemetry.metrics_addr) {
            (Some(t), Some(addr)) => Some(MetricsExporter::start(addr, Arc::clone(t))?),
            _ => None,
        };
        let started = Instant::now();

        let inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..cfg.workers)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let wakes: Vec<Arc<WakeFd>> = (0..cfg.workers)
            .map(|_| WakeFd::new().map(Arc::new))
            .collect::<std::io::Result<_>>()?;
        let workers = inboxes
            .iter()
            .zip(&wakes)
            .enumerate()
            .map(|(slot, (inbox, wake))| {
                let shared = WorkerShared {
                    store: Arc::clone(&store),
                    inbox: Arc::clone(inbox),
                    wake: Arc::clone(wake),
                    stop: Arc::clone(&stop),
                    ov: cfg.overload.clone(),
                    load: Arc::clone(&load),
                    events: Arc::clone(&events),
                    tel: tel.clone(),
                    started,
                };
                let deadline = cfg.drain_deadline;
                std::thread::spawn(move || worker_loop(shared, deadline, slot))
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let load = Arc::clone(&load);
            let wakes = wakes.clone();
            std::thread::spawn(move || {
                let mut next = 0usize;
                let mut backoff = AcceptBackoff::new();
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            backoff.reset();
                            let w = next % inboxes.len();
                            inboxes[w].lock().unwrap().push(stream);
                            // Ring the worker's doorbell: its epoll wait
                            // returns promptly instead of eating the idle
                            // poll timeout before adopting the connection.
                            wakes[w].wake();
                            next += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            backoff.reset();
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        // EMFILE/ENFILE/ECONNABORTED and friends: transient.
                        // Back off (escalating, capped) and keep the
                        // listener — the condition clears when connections
                        // close, and tearing down turns a spike into an
                        // outage.
                        Err(_) => {
                            load.note_accept_retry();
                            backoff.wait();
                        }
                    }
                }
            })
        };

        Ok(Self {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            wakes,
            store,
            load,
            events,
            tel,
            exporter,
            advancer,
        })
    }

    /// A point-in-time snapshot of the admission-control counters (also
    /// available remotely through `STATS`).
    pub fn load_stats(&self) -> LoadStats {
        self.load.snapshot()
    }

    /// A point-in-time snapshot of the event-loop counters (also available
    /// remotely through `STATS`).
    pub fn event_stats(&self) -> EventStats {
        self.events.snapshot()
    }

    /// The telemetry state, when enabled: the metrics registry, the
    /// slow-request rings, and the exposition renderers (also available
    /// remotely through `METRICS`/`TRACE`).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tel.as_deref()
    }

    /// The bound address of the Prometheus exposition listener, when one
    /// was configured (resolves a `:0` port).
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(MetricsExporter::local_addr)
    }

    /// The bound address (resolves the `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store the server executes against (for in-process preload,
    /// statistics, or recovery checks).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    fn signal_stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Wake every worker out of its poll so the drain starts now, not a
        // poll timeout from now.
        for w in &self.wakes {
            w.wake();
        }
    }

    /// Graceful drain: stop accepting, let every worker serve the requests
    /// already buffered and flush its responses, join the pool, then stop
    /// the epoch advancer (durable mode).  Returns the store so callers can
    /// take post-shutdown statistics (exact: every worker handle has been
    /// dropped, which flushes its tallies) or a recovery cut with no
    /// concurrent epoch ticks.
    pub fn shutdown(mut self) -> Arc<Store> {
        self.signal_stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(e) = self.exporter.take() {
            e.shutdown();
        }
        if let Some(adv) = self.advancer.take() {
            adv.shutdown();
        }
        Arc::clone(&self.store)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` consumed the threads if it ran; otherwise stop and join
        // here so a dropped server never leaks its pool.
        self.signal_stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // `advancer` drops (and joins) after the workers by field order.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_escalates_to_cap_and_resets() {
        let mut b = AcceptBackoff::new();
        let mut prev = Duration::ZERO;
        for _ in 0..16 {
            let d = b.advance();
            assert!(d >= prev, "delays must be nondecreasing");
            assert!(d <= AcceptBackoff::MAX);
            prev = d;
        }
        assert_eq!(prev, AcceptBackoff::MAX, "must reach the cap");
        b.reset();
        assert_eq!(b.advance(), AcceptBackoff::INITIAL);
    }

    #[test]
    fn server_load_tracks_backlog_and_peak() {
        let load = ServerLoad::new(2);
        load.set_backlog(0, 100);
        load.set_backlog(1, 50);
        let s = load.snapshot();
        assert_eq!(s.inflight_bytes, 150);
        assert_eq!(s.peak_inflight_bytes, 150);
        load.set_backlog(0, 0);
        let s = load.snapshot();
        assert_eq!(s.inflight_bytes, 50);
        assert_eq!(s.peak_inflight_bytes, 150, "peak must not regress");
        load.note_shed();
        load.note_accept_retry();
        let s = load.snapshot();
        assert_eq!(s.shed_requests, 1);
        assert_eq!(s.accept_retries, 1);
    }

    #[test]
    fn write_chain_tracks_partial_consumption_across_segments() {
        let mut chain = WriteChain::new();
        // Two sealed segments plus an open tail.
        chain.encode_with(|b| b.extend_from_slice(&[1u8; WRITE_SEGMENT_BYTES]));
        chain.encode_with(|b| b.extend_from_slice(&[2u8; WRITE_SEGMENT_BYTES]));
        chain.encode_with(|b| b.extend_from_slice(&[3u8; 100]));
        let total = 2 * WRITE_SEGMENT_BYTES + 100;
        assert_eq!(chain.len, total);
        assert_eq!(chain.segs.len(), 2);
        assert_eq!(chain.tail.len(), 100);

        // (count, total bytes, first slice's length and leading byte)
        fn peek(chain: &WriteChain) -> (usize, usize, usize, u8) {
            let mut iovs = Vec::new();
            chain.gather(&mut iovs);
            let total = iovs.iter().map(|s| s.len()).sum();
            let (flen, fbyte) = iovs.first().map_or((0, 0), |s| (s.len(), s[0]));
            (iovs.len(), total, flen, fbyte)
        }

        assert_eq!(peek(&chain), (3, total, WRITE_SEGMENT_BYTES, 1));

        // Consume into the middle of the first segment...
        chain.advance(10);
        assert_eq!(peek(&chain), (3, total - 10, WRITE_SEGMENT_BYTES - 10, 1));
        // ...then across the segment boundary into the second.
        chain.advance(WRITE_SEGMENT_BYTES);
        assert_eq!(
            peek(&chain),
            (
                2,
                WRITE_SEGMENT_BYTES - 10 + 100,
                WRITE_SEGMENT_BYTES - 10,
                2
            )
        );
        // ...and drain everything.
        let remaining = chain.len;
        chain.advance(remaining);
        assert!(chain.is_empty());
        assert_eq!(peek(&chain), (0, 0, 0, 0));

        // New bytes after a full drain start a fresh tail; partial tail
        // consumption must resume mid-tail, not from its start.
        chain.encode_with(|b| b.extend_from_slice(b"tail"));
        assert_eq!(chain.len, 4);
        chain.advance(2);
        {
            let mut iovs = Vec::new();
            chain.gather(&mut iovs);
            assert_eq!(iovs.len(), 1);
            assert_eq!(&iovs[0][..], b"il");
        }
    }

    #[test]
    fn write_chain_iovec_gather_is_bounded() {
        let mut chain = WriteChain::new();
        for _ in 0..(2 * MAX_WRITE_IOVECS) {
            chain.encode_with(|b| b.extend_from_slice(&[0u8; WRITE_SEGMENT_BYTES]));
        }
        let mut iovs = Vec::new();
        chain.gather(&mut iovs);
        assert_eq!(iovs.len(), MAX_WRITE_IOVECS);
    }
}
