//! The TCP server: a fixed worker pool multiplexing pipelined connections.
//!
//! One acceptor thread hands sockets round-robin to `workers` worker
//! threads.  Each worker registers **one** [`medley::ThreadHandle`] — one
//! `TxManager` thread slot, held for the server's lifetime — and multiplexes
//! all of its connections over it with nonblocking reads/writes
//! (thread-per-core style: the worker *is* the transaction thread, so a
//! command never crosses a thread boundary between decode and commit).
//! Requests are executed in arrival order per connection and responses are
//! written back in the same order, so clients may pipeline arbitrarily
//! deeply.
//!
//! Shutdown is a graceful drain: the acceptor stops, every worker finishes
//! executing the complete frames already buffered on its connections,
//! flushes its write buffers, and only then closes the sockets and drops
//! its handle (flushing its statistics).  In durable mode the epoch
//! advancer is stopped *after* the workers, so every committed update still
//! has a ticking clock while requests are in flight.

use crate::proto::{self, Request, Response};
use crate::store::{ErrCode, Store, StoreConfig};
use medley::{ThreadHandle, TxManager};
use pmem::EpochAdvancer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port; see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (= `TxManager` slots held; each multiplexes any number
    /// of connections).
    pub workers: usize,
    /// The store the workers execute against.
    pub store: StoreConfig,
    /// How long [`Server::shutdown`] lets the drain run before force-closing
    /// connections that still have unflushed output.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            store: StoreConfig::default(),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Idle strategy: a worker whose pass moved no bytes first yields (cheap,
/// keeps wakeup latency at scheduler granularity while requests are
/// trickling), and only after this many consecutive idle passes starts
/// sleeping — so a quiet server costs ~no CPU but an active connection
/// never eats a fixed sleep on its latency path.
const IDLE_YIELDS: u32 = 128;

/// Sleep per idle pass once the yield budget is exhausted.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 64 << 10;

/// One multiplexed connection's state.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes; `rpos` marks how far frames have been consumed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Outbound bytes; `wpos` marks how far the socket has accepted them.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Peer closed its sending side (we still flush what we owe).
    eof: bool,
    /// The inbound stream is unrecoverable (oversized length prefix): no
    /// more reading or decoding, but responses to requests that already
    /// executed are still flushed before the socket closes.
    poisoned: bool,
    /// Connection is unusable (I/O error); dropped immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
            poisoned: false,
            dead: false,
        })
    }

    /// Whether every byte owed to the peer has hit the socket.
    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// Moves buffered responses toward the socket.  Returns whether bytes
    /// were written.
    fn pump_write(&mut self) -> bool {
        let mut progress = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.flushed() && !self.wbuf.is_empty() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        progress
    }

    /// Pulls available bytes off the socket.  Returns whether bytes were
    /// read.
    fn pump_read(&mut self) -> bool {
        if self.eof || self.dead || self.poisoned {
            return false;
        }
        let mut progress = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Decodes and executes every complete frame buffered so far.  Returns
    /// whether any frame was served.
    fn pump_execute(&mut self, store: &Store, h: &mut ThreadHandle) -> bool {
        if self.poisoned {
            return false;
        }
        let mut progress = false;
        loop {
            let frame = match proto::take_frame(&self.rbuf, &mut self.rpos) {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    // A length prefix past MAX_FRAME: resynchronization is
                    // impossible.  Poison (not kill) the connection so the
                    // responses of requests that already executed are still
                    // flushed before the socket closes.
                    self.poisoned = true;
                    break;
                }
            };
            progress = true;
            match proto::decode_request(frame) {
                Ok((req_id, req)) => {
                    let opcode = proto::request_opcode(&req);
                    let resp = match &req {
                        Request::Cmd(cmd) => match store.exec(h, cmd) {
                            Ok(out) => Response::Ok(out),
                            Err(e) => Response::Err(e),
                        },
                        Request::Stats => Response::Stats(store.stats(h)),
                        Request::Sync => Response::Synced(store.sync()),
                    };
                    proto::encode_response(&mut self.wbuf, req_id, opcode, &resp);
                }
                Err(_) => {
                    // Frame boundaries are intact, so answer and carry on.
                    let req_id = frame
                        .get(..4)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                        .unwrap_or(0);
                    let opcode = frame.get(4).copied().unwrap_or(0);
                    proto::encode_response(
                        &mut self.wbuf,
                        req_id,
                        opcode,
                        &Response::Err(ErrCode::Malformed),
                    );
                }
            }
        }
        // Reclaim consumed prefix once it dominates the buffer.
        if self.rpos > 4096 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        progress
    }

    /// Whether the connection is finished and can be dropped.
    fn finished(&self) -> bool {
        self.dead
            || (self.poisoned && self.flushed())
            || (self.eof && self.flushed() && !self.has_pending_frame())
    }

    fn has_pending_frame(&self) -> bool {
        let mut pos = self.rpos;
        matches!(proto::take_frame(&self.rbuf, &mut pos), Ok(Some(_)))
    }
}

fn worker_loop(
    store: Arc<Store>,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    drain_deadline: Duration,
) {
    let mut h = store.manager().register();
    let mut conns: Vec<Conn> = Vec::new();
    let mut draining_since: Option<Instant> = None;
    let mut idle_streak = 0u32;
    loop {
        for stream in inbox.lock().unwrap().drain(..) {
            if let Ok(c) = Conn::new(stream) {
                conns.push(c);
            }
        }
        let mut progress = false;
        for conn in &mut conns {
            progress |= conn.pump_read();
            progress |= conn.pump_execute(&store, &mut h);
            progress |= conn.pump_write();
        }
        conns.retain(|c| !c.finished());
        if stop.load(Ordering::Acquire) {
            let deadline = *draining_since.get_or_insert_with(Instant::now) + drain_deadline;
            // Drain: requests already received keep being served, but once
            // nothing is buffered in either direction the sockets close —
            // we do not wait for peers to hang up.
            let quiesced = !progress && conns.iter().all(|c| c.flushed() && !c.has_pending_frame());
            if conns.is_empty() || quiesced || Instant::now() > deadline {
                break;
            }
        }
        if progress {
            idle_streak = 0;
        } else {
            idle_streak = idle_streak.saturating_add(1);
            if idle_streak <= IDLE_YIELDS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
    // `h` drops here: unwind-safe stats flush for this worker slot.
}

/// A running kvstore server (see the module docs).
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    store: Arc<Store>,
    advancer: Option<EpochAdvancer>,
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting.
    pub fn start(cfg: &ServerConfig) -> std::io::Result<Self> {
        assert!(cfg.workers > 0, "server needs at least one worker");
        // One slot per worker plus slack for in-process admin/test handles
        // on the same manager.
        let mgr = TxManager::with_max_threads(cfg.workers + 8);
        let (store, advancer) = Store::new(mgr, &cfg.store);
        let store = Arc::new(store);
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..cfg.workers)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let workers = inboxes
            .iter()
            .map(|inbox| {
                let store = Arc::clone(&store);
                let inbox = Arc::clone(inbox);
                let stop = Arc::clone(&stop);
                let deadline = cfg.drain_deadline;
                std::thread::spawn(move || worker_loop(store, inbox, stop, deadline))
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut next = 0usize;
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            inboxes[next % inboxes.len()].lock().unwrap().push(stream);
                            next += 1;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            })
        };

        Ok(Self {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            store,
            advancer,
        })
    }

    /// The bound address (resolves the `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store the server executes against (for in-process preload,
    /// statistics, or recovery checks).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Graceful drain: stop accepting, let every worker serve the requests
    /// already buffered and flush its responses, join the pool, then stop
    /// the epoch advancer (durable mode).  Returns the store so callers can
    /// take post-shutdown statistics (exact: every worker handle has been
    /// dropped, which flushes its tallies) or a recovery cut with no
    /// concurrent epoch ticks.
    pub fn shutdown(mut self) -> Arc<Store> {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(adv) = self.advancer.take() {
            adv.shutdown();
        }
        Arc::clone(&self.store)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` consumed the threads if it ran; otherwise stop and join
        // here so a dropped server never leaks its pool.
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // `advancer` drops (and joins) after the workers by field order.
    }
}
