//! The store core: a sharded namespace of transactional tables.
//!
//! A [`Store`] owns `shards` independent nonblocking maps (Michael hash
//! table, skiplist, elastic split-ordered table, or transactional cache per
//! shard, transient Medley or durable txMontage backend) plus the
//! [`medley::TxManager`] they all share.  Keys route to shards through a
//! pluggable [`Partitioner`], so a multi-key command routinely spans several
//! *distinct* nonblocking structures — and because every structure is an
//! NBTC `Composable` on the same manager, the store simply runs the whole
//! command under one [`medley::ThreadHandle::run_with`] and gets
//! multi-structure atomicity for free.  That is the paper's composition
//! claim turned into the product feature: `TRANSFER` debits one map and
//! credits another in a single M-compare-N-swap commit, `MGET` is one
//! descriptor-free atomic snapshot across shards, a [`Cmd::Batch`] is a
//! small transaction IR executed failure-atomically, and a [`Cmd::Scan`]
//! walks per-shard ordered cursors inside one transaction and returns an
//! atomically-consistent ordered page.
//!
//! # Partitioning
//!
//! The key→shard map is a policy, not a constant: [`HashPartition`] is the
//! stable Fibonacci shard hash every release has shipped (wire-compatible —
//! existing clients' keys keep landing on the same shards), and
//! [`RangePartition`] splits the key space into contiguous ranges over
//! ordered shards, which is what lets `SCAN` answer a *global* range query
//! by visiting only the overlapping shards in key order.  The scheme is
//! selected per [`TableKind`]: `Skip` namespaces are range-partitioned,
//! everything else hashes.  Invalid knob combinations are rejected with a
//! typed [`ConfigError`] instead of silently ignored.
//!
//! Single-key `GET`/`PUT`/`DEL`/`CONTAINS` need no composition and run as
//! standalone operations through [`medley::NonTx`], which monomorphizes the
//! instrumentation away — the service's hot path pays for transactions only
//! when a command actually composes.  The one exception is
//! [`TableKind::Cache`]: a cache *op* is itself a composition (lookup +
//! recency record, insert + eviction), so cache stores run even single-key
//! commands as one transaction (see [`crate::cache::TxCache`]).

use crate::cache::TxCache;
use crate::proto::{CacheStats, PartitionScheme, ShardKind, ShardStats, StatsReply, TableStats};
use medley::{AbortReason, ContentionPolicy, RunConfig, ThreadHandle, TxError, TxManager};
use nbds::{MichaelHashMap, SkipList, SplitOrderedMap};
use pmem::{EpochAdvancer, NvmCostModel, PersistenceDomain, Value};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use txmontage::{Durable, DurableHashMap, DurableSkipList, DurableSplitOrderedMap};

/// A typed store command (the request IR; see [`crate::proto`] for the wire
/// encoding).
///
/// The fixed-width (`u64`) variants are the historical interface; the `*B`
/// variants carry variable-length [`Value`]s.  Both families address the
/// same tables — an 8-byte blob and a word are the *same* value (see
/// [`pmem::value`]'s canonical form) — but a fixed-width command that
/// encounters a longer blob value reports [`ErrCode::Malformed`], because
/// its result type cannot carry the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Look up a key.
    Get(u64),
    /// Insert or replace a key.
    Put(u64, u64),
    /// Remove a key.
    Del(u64),
    /// Compare-and-swap a key's value (fails if absent or mismatched).
    Cas {
        /// Key to update.
        key: u64,
        /// Value the key must currently hold.
        expected: u64,
        /// Replacement value.
        desired: u64,
    },
    /// Membership test (never clones the value).
    Contains(u64),
    /// Atomic multi-key read: one consistent (read-only transactional)
    /// snapshot of all the keys, across shards.
    MGet(Vec<u64>),
    /// Atomic multi-key write: all puts commit together or not at all.
    MSet(Vec<(u64, u64)>),
    /// Move `amount` from one account to another, failure-atomically.
    Transfer {
        /// Debited key.
        from: u64,
        /// Credited key.
        to: u64,
        /// Units to move.
        amount: u64,
    },
    /// A list of single-key commands run as one transaction.
    Batch(Vec<Cmd>),
    /// Blob lookup: like [`Cmd::Get`] but the result carries any value.
    GetB(u64),
    /// Blob insert-or-replace.
    PutB(u64, Value),
    /// Blob remove.
    DelB(u64),
    /// Blob compare-and-swap (byte-exact comparison).
    CasB {
        /// Key to update.
        key: u64,
        /// Value the key must currently hold.
        expected: Value,
        /// Replacement value.
        desired: Value,
    },
    /// Blob-capable atomic multi-key read.
    MGetB(Vec<u64>),
    /// Blob-capable atomic multi-key write.
    MSetB(Vec<(u64, Value)>),
    /// Ordered range read: up to `limit` `(key, value)` pairs with
    /// `lo <= key < hi`, ascending, as one atomic snapshot (the per-shard
    /// cursors run under a single transaction, so a committed page is a
    /// consistent cut — concurrent transfers can never show through).
    /// Requires a range-partitioned (ordered) namespace, i.e.
    /// [`TableKind::Skip`]; other table kinds report
    /// [`ErrCode::Malformed`].
    Scan {
        /// Inclusive lower key bound.
        lo: u64,
        /// Exclusive upper key bound.
        hi: u64,
        /// Maximum entries in the page (server-clamped to
        /// [`MAX_SCAN_LIMIT`]).
        limit: u32,
    },
}

/// The result of a committed [`Cmd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmdOut {
    /// `GET`: the value, if present.
    Value(Option<u64>),
    /// `PUT`: the previous value, if any.
    Prev(Option<u64>),
    /// `DEL`: the removed value, if any.
    Removed(Option<u64>),
    /// `CAS` outcome; `current` is the post-operation value.
    Cas {
        /// Whether the swap happened.
        success: bool,
        /// The key's value after the operation (`None` if absent).
        current: Option<u64>,
    },
    /// `CONTAINS` outcome.
    Present(bool),
    /// `MGET`: one entry per requested key, in request order.
    Values(Vec<Option<u64>>),
    /// `MSET` acknowledgement.
    Done,
    /// `TRANSFER`: both post-transfer balances.
    Transferred {
        /// Debited account's balance after the transfer.
        from_after: u64,
        /// Credited account's balance after the transfer.
        to_after: u64,
    },
    /// `BATCH`: one result per command, in order.
    Batch(Vec<CmdOut>),
    /// `GETB`: the value, if present.
    ValueB(Option<Value>),
    /// `PUTB`: the previous value, if any.
    PrevB(Option<Value>),
    /// `DELB`: the removed value, if any.
    RemovedB(Option<Value>),
    /// `CASB` outcome; `current` is the post-operation value.
    CasB {
        /// Whether the swap happened.
        success: bool,
        /// The key's value after the operation (`None` if absent).
        current: Option<Value>,
    },
    /// `MGETB`: one entry per requested key, in request order.
    ValuesB(Vec<Option<Value>>),
    /// `SCAN`: the ordered page, ascending by key.  May be shorter than the
    /// requested limit when the range runs dry or the page hits the byte
    /// budget; either way it is a consistent prefix of the range.
    Page(Vec<(u64, Value)>),
}

/// How a command failed (mapped onto the wire's status byte; see the
/// [`crate::proto`] table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Conflict-aborted past the server's retry budget; safe to resend.
    Retry,
    /// Transaction exceeded descriptor capacity; shrink the batch.
    Capacity,
    /// A `TRANSFER` account does not exist.
    NotFound,
    /// `TRANSFER` source balance below the requested amount, or the credit
    /// would overflow the destination balance (nothing changed either way).
    Insufficient,
    /// Load-shed at admission: the server refused to start the command
    /// because it is over its backlog watermark.  Nothing was executed, so
    /// resending (after a jittered delay) is always safe.
    Overload,
    /// Undecodable request, illegal `BATCH` member, or a fixed-width (`u64`)
    /// command that encountered a blob value it cannot represent (use the
    /// `*B` blob commands, which handle every value).
    Malformed,
}

/// Which map implements each shard.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TableKind {
    /// Michael hash table per shard (O(1) point ops; the default).
    #[default]
    Hash,
    /// Skiplist per shard.  The namespace is **range-partitioned**
    /// (contiguous key ranges over ordered shards), which is what makes
    /// [`Cmd::Scan`] a global ordered query instead of a per-shard one.
    Skip,
    /// Alternate hash/skiplist per shard — every cross-shard command then
    /// composes operations on *different* structure types in one
    /// transaction, the paper's headline trick.  Hash-partitioned (not all
    /// shards are ordered), so `SCAN` is unavailable.
    Mixed,
    /// Split-ordered elastic hash table per shard: each shard boots at
    /// [`ELASTIC_BOOT_BUCKETS`] buckets and doubles its directory on-line as
    /// committed inserts accumulate, so setting
    /// [`StoreConfig::buckets_per_shard`] is a [`ConfigError`] — there is
    /// nothing to tune.  Resizing is infrastructure work that never joins a
    /// command transaction's footprint (see [`nbds::SplitOrderedMap`]).
    Elastic,
    /// Transactional second-chance cache per shard ([`TxCache`]): a hash
    /// map and an MS queue composed so lookup + recency record and insert +
    /// eviction are each ONE transaction.  `capacity` bounds *live entries
    /// across the whole store* (split evenly over shards) and holds in
    /// every committed state.  Transient backend only.
    Cache {
        /// Store-wide live-entry bound (must be ≥ `shards`, so every shard
        /// gets at least one slot).
        capacity: u64,
    },
}

/// Initial bucket count of each [`TableKind::Elastic`] shard.  Deliberately
/// tiny relative to real key counts: the point of the elastic table is that
/// the directory finds its own size under load.
pub const ELASTIC_BOOT_BUCKETS: usize = 256;

/// Bucket count per hash/cache shard when [`StoreConfig::buckets_per_shard`]
/// is left unset.
pub const DEFAULT_BUCKETS_PER_SHARD: usize = 1 << 10;

/// Hard cap on one `SCAN` page's entry count.  Keeps the largest
/// word-valued response comfortably under the 1 MiB frame cap; the byte
/// budget below covers blob-valued pages.  A page is further bounded by the
/// transaction descriptor's read-set capacity (one counted read per
/// returned entry): a window too wide to fit atomically reports
/// [`ErrCode::Capacity`] — shrink it and page through.
pub const MAX_SCAN_LIMIT: u32 = 32_768;

/// Byte budget of one `SCAN` page: assembly stops after the entry that
/// crosses it, so a page with maximum-size blob values still fits a frame.
/// The page stays a *prefix* of the range — truncation never costs
/// atomicity.
const MAX_SCAN_BYTES: usize = 512 << 10;

mod sealed {
    /// Seals [`super::Partitioner`].  Routing is part of the service's
    /// wire-compatibility contract — a client's keys must keep landing on
    /// the same shards across releases — so the set of schemes is closed.
    pub trait Sealed {}
    impl Sealed for super::HashPartition {}
    impl Sealed for super::RangePartition {}
}

/// A key→shard routing policy.  Sealed: only the two in-crate schemes
/// ([`HashPartition`], [`RangePartition`]) implement it (see the module
/// docs for why the set is closed).
pub trait Partitioner: sealed::Sealed {
    /// The shard `key` routes to (always `< shards`).
    fn shard_of(&self, key: u64) -> usize;
    /// Whether shard index order equals key order — the property that lets
    /// a range scan visit shards in sequence and concatenate their pages.
    fn is_ordered(&self) -> bool;
}

/// The stable Fibonacci shard hash every release has shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartition {
    shards: usize,
}

impl HashPartition {
    /// A hash partition over `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self { shards }
    }
}

impl Partitioner for HashPartition {
    /// Fibonacci hash so dense *and* strided key patterns both spread (a
    /// plain `key % shards` would pin every client that strides by the
    /// shard count onto one table).  This exact function is the routing
    /// every prior release shipped — changing it would silently re-home
    /// existing clients' keys.
    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h % self.shards as u64) as usize
    }
    fn is_ordered(&self) -> bool {
        false
    }
}

/// Contiguous key ranges over ordered shards: shard `i` owns keys `k` with
/// `i·2⁶⁴ ≤ k·n < (i+1)·2⁶⁴` for `n` shards — a division-free
/// multiplicative split of the full `u64` space that is monotone in `k`,
/// so shard order *is* key order and a range query touches only the shards
/// its window overlaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePartition {
    shards: usize,
}

impl RangePartition {
    /// A range partition over `shards` ordered shards.
    pub fn new(shards: usize) -> Self {
        Self { shards }
    }
}

impl Partitioner for RangePartition {
    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        ((key as u128 * self.shards as u128) >> 64) as usize
    }
    fn is_ordered(&self) -> bool {
        true
    }
}

/// The store's chosen scheme.  An enum rather than a trait object: the
/// trait is sealed, so this is exhaustive, and shard resolution stays a
/// predictable branch on the hot path instead of a vtable call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Hash-partitioned namespace (point-op table kinds).
    Hash(HashPartition),
    /// Range-partitioned namespace (ordered table kinds; supports `SCAN`).
    Range(RangePartition),
}

impl Partition {
    /// The scheme a table kind routes by.
    fn for_tables(tables: &TableKind, shards: usize) -> Self {
        match tables {
            TableKind::Skip => Partition::Range(RangePartition::new(shards)),
            _ => Partition::Hash(HashPartition::new(shards)),
        }
    }
    /// The wire tag reported in the `STATS` table section.
    fn scheme(&self) -> PartitionScheme {
        match self {
            Partition::Hash(_) => PartitionScheme::Hash,
            Partition::Range(_) => PartitionScheme::Range,
        }
    }
}

impl Partitioner for Partition {
    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        match self {
            Partition::Hash(p) => p.shard_of(key),
            Partition::Range(p) => p.shard_of(key),
        }
    }
    fn is_ordered(&self) -> bool {
        matches!(self, Partition::Range(_))
    }
}

impl sealed::Sealed for Partition {}

/// Why [`Store::new`] rejected a [`StoreConfig`].
///
/// Meaningless knob combinations are errors, not silently ignored
/// defaults: a config that sets `buckets_per_shard` on an elastic store
/// *believes* it tuned something, and the honest response is to say no.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `shards == 0`: there is nothing to route keys to.
    NoShards,
    /// `buckets_per_shard == Some(0)`: a hash table needs a bucket.
    ZeroBuckets,
    /// `buckets_per_shard` set for a table kind with no fixed bucket
    /// directory (elastic tables size themselves; skiplists have no
    /// buckets at all).  Carries the kind's name.
    BucketsNotApplicable(&'static str),
    /// [`TableKind::Cache`] with `capacity == 0`: a cache that can hold
    /// nothing.
    CacheNeedsCapacity,
    /// [`TableKind::Cache`] with fewer capacity slots than shards: the
    /// capacity splits across shards and some shard would get zero.
    CacheCapacityBelowShards {
        /// The configured capacity.
        capacity: u64,
        /// The configured shard count.
        shards: usize,
    },
    /// [`TableKind::Cache`] on the durable backend: a cache is
    /// definitionally reconstructible, so persisting one buys nothing and
    /// the combination is almost certainly a mistake.
    DurableCache,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoShards => f.write_str("store needs at least one shard"),
            ConfigError::ZeroBuckets => f.write_str("buckets_per_shard must be nonzero"),
            ConfigError::BucketsNotApplicable(kind) => {
                write!(f, "buckets_per_shard is meaningless for {kind} tables")
            }
            ConfigError::CacheNeedsCapacity => f.write_str("cache tables need a nonzero capacity"),
            ConfigError::CacheCapacityBelowShards { capacity, shards } => write!(
                f,
                "cache capacity {capacity} is below the shard count {shards}"
            ),
            ConfigError::DurableCache => {
                f.write_str("cache tables are transient-only (a cache is reconstructible)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which runtime backs the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// Transient Medley maps (DRAM only).
    #[default]
    Transient,
    /// Durable txMontage maps: every update allocates/retires payload
    /// records in a [`PersistenceDomain`]; `SYNC` takes a durability cut and
    /// recovery returns the last cut's state.
    Durable,
}

/// Store construction parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shards (tables) the key space hashes over.
    pub shards: usize,
    /// Map type per shard.
    pub tables: TableKind,
    /// Buckets per hash/cache shard, or `None` for
    /// [`DEFAULT_BUCKETS_PER_SHARD`].  Setting it for a kind with no fixed
    /// bucket directory (`Skip`, `Elastic`) is a [`ConfigError`].
    pub buckets_per_shard: Option<usize>,
    /// Transient or durable tables.
    pub backend: StoreBackend,
    /// Conflict-retry budget per command before reporting
    /// [`ErrCode::Retry`] to the client.
    pub max_retries: u64,
    /// How command transactions wait between conflict retries (the
    /// [`medley::ContentionPolicy`] passed to every `run_with`).  The
    /// adaptive policy is what the overload harness A/Bs against the
    /// default exponential backoff.
    pub contention: ContentionPolicy,
    /// Durable mode: period of the background epoch advancer, or `None` to
    /// leave the epoch clock manual (only [`Store::sync`] advances it —
    /// used by restart tests that need a deterministic durability cut).
    pub advancer_period: Option<Duration>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            tables: TableKind::Hash,
            buckets_per_shard: None,
            backend: StoreBackend::Transient,
            max_retries: 256,
            contention: ContentionPolicy::Backoff,
            advancer_period: Some(Duration::from_micros(200)),
        }
    }
}

/// One shard's table.  Every variant stores [`Value`]s and operates over the
/// same `TxManager`, which is what lets a single transaction span any mix of
/// them.
enum Table {
    Hash(MichaelHashMap<Value>),
    Skip(SkipList<Value>),
    Elastic(SplitOrderedMap<Value>),
    Cache(TxCache),
    DurableHash(DurableHashMap<Value>),
    DurableSkip(DurableSkipList<Value>),
    DurableElastic(DurableSplitOrderedMap<Value>),
}

macro_rules! on_table {
    ($table:expr, $m:ident => $body:expr) => {
        match $table {
            Table::Hash($m) => $body,
            Table::Skip($m) => $body,
            Table::Elastic($m) => $body,
            Table::Cache($m) => $body,
            Table::DurableHash($m) => $body,
            Table::DurableSkip($m) => $body,
            Table::DurableElastic($m) => $body,
        }
    };
}

impl Table {
    fn get<C: medley::Ctx>(&self, cx: &mut C, key: u64) -> Option<Value> {
        on_table!(self, m => m.get(cx, key))
    }
    fn insert_or_replace<C: medley::Ctx>(&self, cx: &mut C, key: u64, val: Value) -> Option<Value> {
        on_table!(self, m => m.put(cx, key, val))
    }
    fn remove<C: medley::Ctx>(&self, cx: &mut C, key: u64) -> Option<Value> {
        on_table!(self, m => m.remove(cx, key))
    }
    fn contains<C: medley::Ctx>(&self, cx: &mut C, key: u64) -> bool {
        on_table!(self, m => m.contains(cx, key))
    }
    /// Ordered cursor over `bounds` (ordered shards only).  Routing
    /// guarantees only range-partitioned stores get here, and those are
    /// all-skiplist by construction.
    fn range<C: medley::Ctx>(
        &self,
        cx: &mut C,
        bounds: std::ops::Range<u64>,
        limit: usize,
    ) -> Vec<(u64, Value)> {
        match self {
            Table::Skip(m) => m.range(cx, bounds, limit),
            Table::DurableSkip(m) => m.range(cx, bounds, limit),
            _ => unreachable!("SCAN routed to an unordered shard"),
        }
    }
    /// The shard's entry in the `STATS` table section.  Counts are relaxed
    /// snapshots — consistent enough for capacity monitoring, not a
    /// linearizable size.
    fn shard_stats(&self) -> ShardStats {
        match self {
            Table::Hash(m) => ShardStats {
                kind: ShardKind::Hash,
                items: Some(m.len()),
                buckets: m.bucket_count() as u64,
            },
            Table::DurableHash(m) => ShardStats {
                kind: ShardKind::Hash,
                items: Some(m.inner().len()),
                buckets: m.inner().bucket_count() as u64,
            },
            Table::Skip(_) | Table::DurableSkip(_) => ShardStats {
                kind: ShardKind::Skip,
                items: None,
                buckets: 0,
            },
            Table::Cache(c) => ShardStats {
                kind: ShardKind::Cache,
                items: Some(c.occupancy()),
                buckets: c.bucket_count() as u64,
            },
            Table::Elastic(m) => ShardStats {
                kind: ShardKind::Elastic,
                items: Some(m.len()),
                buckets: m.buckets(),
            },
            Table::DurableElastic(m) => ShardStats {
                kind: ShardKind::Elastic,
                items: Some(m.inner().len()),
                buckets: m.inner().buckets(),
            },
        }
    }
    /// Directory doublings so far (elastic shards; `0` otherwise).
    fn grow_events(&self) -> u64 {
        match self {
            Table::Elastic(m) => m.grow_events(),
            Table::DurableElastic(m) => m.inner().grow_events(),
            _ => 0,
        }
    }
}

/// Converts a value read by a fixed-width (`u64`) command; a blob cannot be
/// carried by the `u64` result types, so the command reports
/// [`ErrCode::Malformed`] (the `*B` commands handle every value).
fn word(v: Option<Value>) -> Result<Option<u64>, ErrCode> {
    match v {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(ErrCode::Malformed),
    }
}

/// In-transaction form of [`word`]: on a blob value, records the error code
/// and aborts the surrounding transaction (nothing commits).
macro_rules! word_or_abort {
    ($t:expr, $why:expr, $v:expr) => {
        match word($v) {
            Ok(v) => v,
            Err(e) => {
                $why.set(e);
                return Err($t.abort(AbortReason::Explicit));
            }
        }
    };
}

/// The one routing path every command shares: single-key bodies run
/// standalone (`NonTx` — the uninstrumented hot path) on plain tables, but
/// as one Medley transaction on cache tables, whose ops internally span a
/// map and a recency queue and must commit or vanish as a unit.  The body
/// yields `Result<CmdOut, ErrCode>` without `?`; in transactional mode an
/// `Err` aborts explicitly and the code is carried out of the retry loop.
macro_rules! point_op {
    ($store:expr, $h:expr, |$cx:ident| $body:expr) => {{
        if $store.point_tx {
            let why = Cell::new(ErrCode::Retry);
            $h.run_with(&$store.run_cfg, |$cx| match $body {
                Ok(out) => Ok(out),
                Err(e) => {
                    why.set(e);
                    Err($cx.abort(AbortReason::Explicit))
                }
            })
            .map_err(|e| match e {
                TxError::Explicit => why.get(),
                other => Store::map_tx_err(other),
            })
        } else {
            let $cx = &mut $h.nontx();
            $body
        }
    }};
}

/// The sharded transactional store (see the module docs).
pub struct Store {
    mgr: Arc<TxManager>,
    tables: Vec<Table>,
    partition: Partition,
    /// Whether single-key commands must run transactionally (cache stores;
    /// see [`point_op!`]).
    point_tx: bool,
    domain: Option<Arc<PersistenceDomain>>,
    run_cfg: RunConfig,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("shards", &self.tables.len())
            .field("durable", &self.domain.is_some())
            .finish()
    }
}

impl Store {
    /// Builds a store on `mgr`.  Returns the store and, in durable mode with
    /// an [`StoreConfig::advancer_period`], the running [`EpochAdvancer`]
    /// (the caller owns its shutdown so drain order is explicit).  A
    /// meaningless knob combination is a typed [`ConfigError`], never a
    /// silently ignored setting.
    pub fn new(
        mgr: Arc<TxManager>,
        cfg: &StoreConfig,
    ) -> Result<(Self, Option<EpochAdvancer>), ConfigError> {
        Self::validate(cfg)?;
        let buckets = cfg.buckets_per_shard.unwrap_or(DEFAULT_BUCKETS_PER_SHARD);
        let domain = match cfg.backend {
            StoreBackend::Transient => None,
            // Count-only NVM model, as in the throughput harness: the
            // service measures runtime bookkeeping, not simulated Optane
            // stalls.
            StoreBackend::Durable => {
                Some(PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO))
            }
        };
        let tables = (0..cfg.shards)
            .map(|i| {
                let kind = match cfg.tables {
                    TableKind::Hash => ShardKind::Hash,
                    TableKind::Skip => ShardKind::Skip,
                    TableKind::Mixed => {
                        if i % 2 == 1 {
                            ShardKind::Skip
                        } else {
                            ShardKind::Hash
                        }
                    }
                    TableKind::Elastic => ShardKind::Elastic,
                    TableKind::Cache { .. } => ShardKind::Cache,
                };
                match (&domain, kind) {
                    (None, ShardKind::Hash) => Table::Hash(MichaelHashMap::with_buckets(buckets)),
                    (None, ShardKind::Skip) => Table::Skip(SkipList::new()),
                    (None, ShardKind::Elastic) => {
                        Table::Elastic(SplitOrderedMap::with_buckets(ELASTIC_BOOT_BUCKETS))
                    }
                    (None, ShardKind::Cache) => {
                        let TableKind::Cache { capacity } = cfg.tables else {
                            unreachable!("kind chosen from cfg.tables above")
                        };
                        // Split the store-wide capacity exactly: the first
                        // `capacity % shards` shards carry the remainder,
                        // so per-shard bounds sum to `capacity`.
                        let n = cfg.shards as u64;
                        let per_shard = capacity / n + u64::from((i as u64) < capacity % n);
                        Table::Cache(TxCache::new(buckets, per_shard))
                    }
                    (Some(d), ShardKind::Hash) => Table::DurableHash(Durable::new(
                        MichaelHashMap::with_buckets(buckets),
                        Arc::clone(d),
                    )),
                    (Some(d), ShardKind::Skip) => {
                        Table::DurableSkip(Durable::new(SkipList::new(), Arc::clone(d)))
                    }
                    (Some(d), ShardKind::Elastic) => Table::DurableElastic(
                        DurableSplitOrderedMap::split_ordered(ELASTIC_BOOT_BUCKETS, Arc::clone(d)),
                    ),
                    (Some(_), ShardKind::Cache) => {
                        unreachable!("validate rejects durable cache configs")
                    }
                }
            })
            .collect();
        let advancer = match (&domain, cfg.advancer_period) {
            (Some(d), Some(period)) => Some(EpochAdvancer::spawn(Arc::clone(d), period)),
            _ => None,
        };
        Ok((
            Self {
                mgr,
                tables,
                partition: Partition::for_tables(&cfg.tables, cfg.shards),
                point_tx: matches!(cfg.tables, TableKind::Cache { .. }),
                domain,
                run_cfg: RunConfig::new()
                    .max_retries(cfg.max_retries)
                    .backoff_limit(8)
                    .contention_policy(cfg.contention),
            },
            advancer,
        ))
    }

    /// The knob-combination rules behind every [`ConfigError`] variant.
    fn validate(cfg: &StoreConfig) -> Result<(), ConfigError> {
        if cfg.shards == 0 {
            return Err(ConfigError::NoShards);
        }
        match cfg.buckets_per_shard {
            Some(0) => return Err(ConfigError::ZeroBuckets),
            Some(_) => match cfg.tables {
                TableKind::Elastic => return Err(ConfigError::BucketsNotApplicable("elastic")),
                TableKind::Skip => return Err(ConfigError::BucketsNotApplicable("skiplist")),
                TableKind::Hash | TableKind::Mixed | TableKind::Cache { .. } => {}
            },
            None => {}
        }
        if let TableKind::Cache { capacity } = cfg.tables {
            if capacity == 0 {
                return Err(ConfigError::CacheNeedsCapacity);
            }
            if capacity < cfg.shards as u64 {
                return Err(ConfigError::CacheCapacityBelowShards {
                    capacity,
                    shards: cfg.shards,
                });
            }
            if cfg.backend == StoreBackend::Durable {
                return Err(ConfigError::DurableCache);
            }
        }
        Ok(())
    }

    /// The transaction manager all shards share.
    pub fn manager(&self) -> &Arc<TxManager> {
        &self.mgr
    }

    /// The persistence domain (durable stores only).
    pub fn domain(&self) -> Option<&Arc<PersistenceDomain>> {
        self.domain.as_ref()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.tables.len()
    }

    /// The partition scheme routing this store's keys.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The shard a key lives in — the single routing decision every
    /// command (point, multi-key, and range) goes through.
    #[inline]
    fn table(&self, key: u64) -> &Table {
        &self.tables[self.partition.shard_of(key)]
    }

    /// Maps the terminal [`TxError`] of a command transaction onto the wire
    /// error code.  `Conflict` cannot reach here (the retry loop absorbs
    /// it); `Explicit` only escapes `TRANSFER`, which records its own code.
    fn map_tx_err(e: TxError) -> ErrCode {
        match e {
            TxError::RetriesExhausted => ErrCode::Retry,
            TxError::CapacityExceeded => ErrCode::Capacity,
            _ => ErrCode::Retry,
        }
    }

    /// Executes one command through `h`.  Single-key reads/writes run
    /// standalone; everything that composes runs as one transaction under
    /// the store's retry budget.
    pub fn exec(&self, h: &mut ThreadHandle, cmd: &Cmd) -> Result<CmdOut, ErrCode> {
        match cmd {
            Cmd::Get(k) => {
                point_op!(self, h, |cx| word(self.table(*k).get(cx, *k))
                    .map(CmdOut::Value))
            }
            Cmd::Put(k, v) => {
                point_op!(self, h, |cx| word(self.table(*k).insert_or_replace(
                    cx,
                    *k,
                    Value::U64(*v)
                ))
                .map(CmdOut::Prev))
            }
            Cmd::Del(k) => {
                point_op!(self, h, |cx| word(self.table(*k).remove(cx, *k))
                    .map(CmdOut::Removed))
            }
            Cmd::Contains(k) => {
                point_op!(self, h, |cx| Ok(CmdOut::Present(
                    self.table(*k).contains(cx, *k)
                )))
            }
            Cmd::GetB(k) => {
                point_op!(self, h, |cx| Ok(CmdOut::ValueB(self.table(*k).get(cx, *k))))
            }
            Cmd::PutB(k, v) => {
                Self::check_len(v)?;
                point_op!(self, h, |cx| Ok(CmdOut::PrevB(
                    self.table(*k).insert_or_replace(cx, *k, v.clone())
                )))
            }
            Cmd::DelB(k) => {
                point_op!(self, h, |cx| Ok(CmdOut::RemovedB(
                    self.table(*k).remove(cx, *k)
                )))
            }
            Cmd::Cas {
                key,
                expected,
                desired,
            } => {
                let table = self.table(*key);
                let why = Cell::new(ErrCode::Retry);
                h.run_with(&self.run_cfg, |t| {
                    let current = table.get(t, *key);
                    if current == Some(Value::U64(*expected)) {
                        table.insert_or_replace(t, *key, Value::U64(*desired));
                        Ok(CmdOut::Cas {
                            success: true,
                            current: Some(*desired),
                        })
                    } else {
                        Ok(CmdOut::Cas {
                            success: false,
                            current: word_or_abort!(t, why, current),
                        })
                    }
                })
                .map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
            Cmd::CasB {
                key,
                expected,
                desired,
            } => {
                Self::check_len(desired)?;
                let table = self.table(*key);
                h.run_with(&self.run_cfg, |t| {
                    let current = table.get(t, *key);
                    if current.as_ref() == Some(expected) {
                        table.insert_or_replace(t, *key, desired.clone());
                        Ok(CmdOut::CasB {
                            success: true,
                            current: Some(desired.clone()),
                        })
                    } else {
                        Ok(CmdOut::CasB {
                            success: false,
                            current,
                        })
                    }
                })
                .map_err(Self::map_tx_err)
            }
            Cmd::MGet(keys) => {
                let why = Cell::new(ErrCode::Retry);
                h.run_with(&self.run_cfg, |t| {
                    let mut vals = Vec::with_capacity(keys.len());
                    for &k in keys {
                        vals.push(word_or_abort!(t, why, self.table(k).get(t, k)));
                    }
                    Ok(CmdOut::Values(vals))
                })
                .map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
            Cmd::MGetB(keys) => h
                .run_with(&self.run_cfg, |t| {
                    Ok(CmdOut::ValuesB(
                        keys.iter().map(|&k| self.table(k).get(t, k)).collect(),
                    ))
                })
                .map_err(Self::map_tx_err),
            Cmd::MSet(pairs) => h
                .run_with(&self.run_cfg, |t| {
                    for &(k, v) in pairs {
                        self.table(k).insert_or_replace(t, k, Value::U64(v));
                    }
                    Ok(CmdOut::Done)
                })
                .map_err(Self::map_tx_err),
            Cmd::MSetB(pairs) => {
                for (_, v) in pairs {
                    Self::check_len(v)?;
                }
                h.run_with(&self.run_cfg, |t| {
                    for (k, v) in pairs {
                        self.table(*k).insert_or_replace(t, *k, v.clone());
                    }
                    Ok(CmdOut::Done)
                })
                .map_err(Self::map_tx_err)
            }
            Cmd::Transfer { from, to, amount } => {
                if from == to {
                    // A self-transfer is a (possibly failing) balance probe.
                    return point_op!(self, h, |cx| match word(self.table(*from).get(cx, *from)) {
                        Err(e) => Err(e),
                        Ok(None) => Err(ErrCode::NotFound),
                        Ok(Some(b)) if b < *amount => Err(ErrCode::Insufficient),
                        Ok(Some(b)) => Ok(CmdOut::Transferred {
                            from_after: b,
                            to_after: b,
                        }),
                    });
                }
                // The closure aborts explicitly on business-rule failures;
                // the cell carries *which* rule fired out of the retry loop.
                let why = Cell::new(ErrCode::Retry);
                let res = h.run_with(&self.run_cfg, |t| {
                    let Some(a) = word_or_abort!(t, why, self.table(*from).get(t, *from)) else {
                        why.set(ErrCode::NotFound);
                        return Err(t.abort(AbortReason::Explicit));
                    };
                    let Some(b) = word_or_abort!(t, why, self.table(*to).get(t, *to)) else {
                        why.set(ErrCode::NotFound);
                        return Err(t.abort(AbortReason::Explicit));
                    };
                    if a < *amount {
                        why.set(ErrCode::Insufficient);
                        return Err(t.abort(AbortReason::Explicit));
                    }
                    // The credit side must be guarded too: an unchecked
                    // `b + amount` is wire-reachable overflow (worker panic
                    // under debug overflow checks, silently wrapped — i.e.
                    // destroyed — balance in release).
                    let Some(credited) = b.checked_add(*amount) else {
                        why.set(ErrCode::Insufficient);
                        return Err(t.abort(AbortReason::Explicit));
                    };
                    self.table(*from)
                        .insert_or_replace(t, *from, Value::U64(a - *amount));
                    self.table(*to)
                        .insert_or_replace(t, *to, Value::U64(credited));
                    Ok(CmdOut::Transferred {
                        from_after: a - *amount,
                        to_after: credited,
                    })
                });
                res.map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
            Cmd::Batch(cmds) => {
                // Validate the IR before opening the transaction: only
                // single-key commands may appear (the codec enforces this on
                // the wire; in-process callers get the same rule).
                for c in cmds {
                    match c {
                        Cmd::Get(_)
                        | Cmd::Put(..)
                        | Cmd::Del(_)
                        | Cmd::Cas { .. }
                        | Cmd::Contains(_)
                        | Cmd::GetB(_)
                        | Cmd::DelB(_) => {}
                        Cmd::PutB(_, v) => Self::check_len(v)?,
                        Cmd::CasB { desired, .. } => Self::check_len(desired)?,
                        _ => return Err(ErrCode::Malformed),
                    }
                }
                let why = Cell::new(ErrCode::Retry);
                h.run_with(&self.run_cfg, |t| {
                    let mut outs = Vec::with_capacity(cmds.len());
                    for c in cmds {
                        outs.push(match c {
                            Cmd::Get(k) => {
                                CmdOut::Value(word_or_abort!(t, why, self.table(*k).get(t, *k)))
                            }
                            Cmd::Put(k, v) => CmdOut::Prev(word_or_abort!(
                                t,
                                why,
                                self.table(*k).insert_or_replace(t, *k, Value::U64(*v))
                            )),
                            Cmd::Del(k) => CmdOut::Removed(word_or_abort!(
                                t,
                                why,
                                self.table(*k).remove(t, *k)
                            )),
                            Cmd::Contains(k) => CmdOut::Present(self.table(*k).contains(t, *k)),
                            Cmd::GetB(k) => CmdOut::ValueB(self.table(*k).get(t, *k)),
                            Cmd::PutB(k, v) => {
                                CmdOut::PrevB(self.table(*k).insert_or_replace(t, *k, v.clone()))
                            }
                            Cmd::DelB(k) => CmdOut::RemovedB(self.table(*k).remove(t, *k)),
                            Cmd::Cas {
                                key,
                                expected,
                                desired,
                            } => {
                                let current = self.table(*key).get(t, *key);
                                if current == Some(Value::U64(*expected)) {
                                    self.table(*key).insert_or_replace(
                                        t,
                                        *key,
                                        Value::U64(*desired),
                                    );
                                    CmdOut::Cas {
                                        success: true,
                                        current: Some(*desired),
                                    }
                                } else {
                                    CmdOut::Cas {
                                        success: false,
                                        current: word_or_abort!(t, why, current),
                                    }
                                }
                            }
                            Cmd::CasB {
                                key,
                                expected,
                                desired,
                            } => {
                                let current = self.table(*key).get(t, *key);
                                if current.as_ref() == Some(expected) {
                                    self.table(*key).insert_or_replace(t, *key, desired.clone());
                                    CmdOut::CasB {
                                        success: true,
                                        current: Some(desired.clone()),
                                    }
                                } else {
                                    CmdOut::CasB {
                                        success: false,
                                        current,
                                    }
                                }
                            }
                            _ => unreachable!("validated above"),
                        });
                    }
                    Ok(CmdOut::Batch(outs))
                })
                .map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
            Cmd::Scan { lo, hi, limit } => {
                if !self.partition.is_ordered() {
                    // A hash-partitioned namespace scatters the window over
                    // every shard with no order to merge by; only ordered,
                    // range-partitioned stores answer global range queries.
                    return Err(ErrCode::Malformed);
                }
                let limit = (*limit).min(MAX_SCAN_LIMIT) as usize;
                if *lo >= *hi || limit == 0 {
                    return Ok(CmdOut::Page(Vec::new()));
                }
                // Contiguous ranges: only the shards the window overlaps,
                // visited in ascending order, so concatenation IS the sort.
                let first = self.partition.shard_of(*lo);
                let last = self.partition.shard_of(*hi - 1);
                h.run_with(&self.run_cfg, |t| {
                    let mut page: Vec<(u64, Value)> = Vec::new();
                    let mut bytes = 0usize;
                    'shards: for table in &self.tables[first..=last] {
                        if page.len() >= limit {
                            break;
                        }
                        for (k, v) in table.range(t, *lo..*hi, limit - page.len()) {
                            bytes += 16 + v.byte_len();
                            page.push((k, v));
                            if bytes > MAX_SCAN_BYTES {
                                break 'shards;
                            }
                        }
                    }
                    Ok(CmdOut::Page(page))
                })
                .map_err(Self::map_tx_err)
            }
        }
    }

    /// Rejects over-limit blob values before any table is touched.
    #[inline]
    fn check_len(v: &Value) -> Result<(), ErrCode> {
        if v.byte_len() > pmem::MAX_VALUE_BYTES {
            Err(ErrCode::Malformed)
        } else {
            Ok(())
        }
    }

    /// Aggregated statistics (the `STATS` admin command).  `h` is the
    /// calling worker's handle: its local tallies are flushed first so the
    /// snapshot includes at least everything this worker completed.
    pub fn stats(&self, h: &mut ThreadHandle) -> StatsReply {
        h.flush_stats();
        // Aggregate cache tallies over the cache shards (absent section for
        // stores without cache tables, like the other optional sections).
        let mut cache: Option<CacheStats> = None;
        for t in &self.tables {
            if let Table::Cache(c) = t {
                let (hits, misses, evictions) = c.counters().snapshot();
                let agg = cache.get_or_insert_with(CacheStats::default);
                agg.hits += hits;
                agg.misses += misses;
                agg.evictions += evictions;
            }
        }
        StatsReply {
            // A bare store has no start instant; the server stamps uptime
            // when it answers `STATS`.
            uptime_secs: 0,
            tx: self.mgr.stats_snapshot(),
            domain: self.domain.as_ref().map(|d| d.stats()),
            // Admission control and the event loop live in the server; a
            // bare store has neither.
            load: None,
            events: None,
            tables: Some(TableStats {
                grow_events: self.tables.iter().map(Table::grow_events).sum(),
                partition: self.partition.scheme(),
                cache,
                shards: self.tables.iter().map(Table::shard_stats).collect(),
            }),
        }
    }

    /// Durability cut (the `SYNC` admin command): on a durable store, every
    /// operation completed before the call is recoverable afterwards
    /// (nbMontage's wait-free sync — epoch advances plus write-back, never
    /// blocking concurrent updaters).  Returns the persisted epoch of the
    /// cut; a transient store is a no-op reporting epoch 0.
    pub fn sync(&self) -> u64 {
        match &self.domain {
            Some(d) => {
                d.sync();
                d.stats().persisted_epoch
            }
            None => 0,
        }
    }

    /// Simulated post-crash recovery of a durable store: the key/value map
    /// as of the last durability horizon (union over all shards, which
    /// share one domain).  Transient stores recover empty.
    pub fn recover(&self) -> HashMap<u64, Value> {
        match &self.domain {
            Some(d) => d.recover(),
            None => HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cfg: &StoreConfig) -> (Arc<TxManager>, Store, Option<EpochAdvancer>) {
        let mgr = TxManager::with_max_threads(16);
        let (s, adv) = Store::new(Arc::clone(&mgr), cfg).expect("valid test config");
        (mgr, s, adv)
    }

    #[test]
    fn single_key_commands_roundtrip() {
        for tables in [
            TableKind::Hash,
            TableKind::Skip,
            TableKind::Mixed,
            TableKind::Elastic,
        ] {
            let cfg = StoreConfig {
                tables,
                shards: 4,
                ..Default::default()
            };
            let (mgr, s, _adv) = store(&cfg);
            let mut h = mgr.register();
            assert_eq!(s.exec(&mut h, &Cmd::Get(1)), Ok(CmdOut::Value(None)));
            assert_eq!(s.exec(&mut h, &Cmd::Put(1, 10)), Ok(CmdOut::Prev(None)));
            assert_eq!(s.exec(&mut h, &Cmd::Put(1, 11)), Ok(CmdOut::Prev(Some(10))));
            assert_eq!(s.exec(&mut h, &Cmd::Get(1)), Ok(CmdOut::Value(Some(11))));
            assert_eq!(s.exec(&mut h, &Cmd::Contains(1)), Ok(CmdOut::Present(true)));
            assert_eq!(s.exec(&mut h, &Cmd::Del(1)), Ok(CmdOut::Removed(Some(11))));
            assert_eq!(
                s.exec(&mut h, &Cmd::Contains(1)),
                Ok(CmdOut::Present(false))
            );
        }
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let (mgr, s, _adv) = store(&StoreConfig::default());
        let mut h = mgr.register();
        let miss = s.exec(
            &mut h,
            &Cmd::Cas {
                key: 5,
                expected: 0,
                desired: 1,
            },
        );
        assert_eq!(
            miss,
            Ok(CmdOut::Cas {
                success: false,
                current: None
            })
        );
        s.exec(&mut h, &Cmd::Put(5, 50)).unwrap();
        let hit = s.exec(
            &mut h,
            &Cmd::Cas {
                key: 5,
                expected: 50,
                desired: 51,
            },
        );
        assert_eq!(
            hit,
            Ok(CmdOut::Cas {
                success: true,
                current: Some(51)
            })
        );
        assert_eq!(s.exec(&mut h, &Cmd::Get(5)), Ok(CmdOut::Value(Some(51))));
    }

    #[test]
    fn multikey_commands_span_shards_atomically() {
        // Mixed tables: keys land on hash *and* skiplist shards, so these
        // transactions compose different structure types.
        let cfg = StoreConfig {
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        let pairs: Vec<(u64, u64)> = (0..32).map(|k| (k, 1000)).collect();
        assert_eq!(s.exec(&mut h, &Cmd::MSet(pairs.clone())), Ok(CmdOut::Done));
        let keys: Vec<u64> = pairs.iter().map(|(k, _)| *k).collect();
        let got = s.exec(&mut h, &Cmd::MGet(keys)).unwrap();
        assert_eq!(got, CmdOut::Values(vec![Some(1000); 32]));

        let t = s
            .exec(
                &mut h,
                &Cmd::Transfer {
                    from: 0,
                    to: 1,
                    amount: 400,
                },
            )
            .unwrap();
        assert_eq!(
            t,
            CmdOut::Transferred {
                from_after: 600,
                to_after: 1400
            }
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::Transfer {
                    from: 0,
                    to: 1,
                    amount: 601,
                },
            ),
            Err(ErrCode::Insufficient)
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::Transfer {
                    from: 999,
                    to: 1,
                    amount: 1,
                },
            ),
            Err(ErrCode::NotFound)
        );
        // Failed transfers changed nothing.
        let got = s.exec(&mut h, &Cmd::MGet(vec![0, 1])).unwrap();
        assert_eq!(got, CmdOut::Values(vec![Some(600), Some(1400)]));
    }

    #[test]
    fn batch_runs_as_one_transaction() {
        let (mgr, s, _adv) = store(&StoreConfig::default());
        let mut h = mgr.register();
        s.exec(&mut h, &Cmd::Put(1, 10)).unwrap();
        let out = s
            .exec(
                &mut h,
                &Cmd::Batch(vec![
                    Cmd::Get(1),
                    Cmd::Put(2, 20),
                    Cmd::Cas {
                        key: 1,
                        expected: 10,
                        desired: 12,
                    },
                    Cmd::Del(1),
                ]),
            )
            .unwrap();
        assert_eq!(
            out,
            CmdOut::Batch(vec![
                CmdOut::Value(Some(10)),
                CmdOut::Prev(None),
                CmdOut::Cas {
                    success: true,
                    current: Some(12)
                },
                CmdOut::Removed(Some(12)),
            ])
        );
        // Multi-key commands are rejected inside a batch.
        assert_eq!(
            s.exec(&mut h, &Cmd::Batch(vec![Cmd::MGet(vec![1])])),
            Err(ErrCode::Malformed)
        );
        h.flush_stats();
        assert!(mgr.stats_snapshot().general_commits >= 1);
    }

    #[test]
    fn elastic_store_grows_under_load_and_reports_it() {
        let cfg = StoreConfig {
            tables: TableKind::Elastic,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        // Enough keys to push every shard's load factor over the threshold
        // several times over (4 shards × 256 boot buckets × factor 4).
        let n: u64 = 40_000;
        for chunk in (0..n).collect::<Vec<_>>().chunks(512) {
            let pairs: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k + 1)).collect();
            assert_eq!(s.exec(&mut h, &Cmd::MSet(pairs)), Ok(CmdOut::Done));
        }
        for k in [0, 1, n / 2, n - 1] {
            assert_eq!(s.exec(&mut h, &Cmd::Get(k)), Ok(CmdOut::Value(Some(k + 1))));
        }
        let stats = s.stats(&mut h);
        let tables = stats.tables.expect("store stats always carry tables");
        assert_eq!(tables.shards.len(), 4);
        assert!(
            tables.grow_events > 0,
            "40k inserts into 4×256 boot buckets must double directories"
        );
        let mut items_total = 0;
        for sh in &tables.shards {
            assert_eq!(sh.kind, ShardKind::Elastic);
            assert!(
                sh.buckets > ELASTIC_BOOT_BUCKETS as u64,
                "shard still at boot size: {} buckets",
                sh.buckets
            );
            items_total += sh.items.expect("elastic shards maintain a counter");
        }
        assert_eq!(items_total, n, "per-shard counters must sum to key count");
    }

    #[test]
    fn stats_tables_section_reflects_table_kinds() {
        let cfg = StoreConfig {
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        s.exec(&mut h, &Cmd::MSet((0..64).map(|k| (k, k)).collect()))
            .unwrap();
        let tables = s.stats(&mut h).tables.unwrap();
        assert_eq!(tables.grow_events, 0, "fixed tables never grow");
        assert_eq!(tables.shards.len(), 4);
        let hash_items: u64 = tables
            .shards
            .iter()
            .filter(|sh| sh.kind == ShardKind::Hash)
            .map(|sh| {
                assert!(sh.buckets > 0);
                sh.items.expect("hash shards maintain a counter")
            })
            .sum();
        assert!(hash_items > 0, "some keys must land on hash shards");
        for sh in tables.shards.iter().filter(|sh| sh.kind == ShardKind::Skip) {
            assert_eq!(sh.items, None);
            assert_eq!(sh.buckets, 0);
        }
    }

    #[test]
    fn durable_elastic_store_syncs_and_recovers() {
        let cfg = StoreConfig {
            backend: StoreBackend::Durable,
            advancer_period: None,
            tables: TableKind::Elastic,
            shards: 2,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        let n: u64 = 8_192;
        for chunk in (0..n).collect::<Vec<_>>().chunks(512) {
            let pairs: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k * 2)).collect();
            s.exec(&mut h, &Cmd::MSet(pairs)).unwrap();
        }
        let tables = s.stats(&mut h).tables.unwrap();
        assert!(
            tables.grow_events > 0,
            "durable elastic shards must grow too"
        );
        s.sync();
        let rec = s.recover();
        assert_eq!(rec.len(), n as usize);
        assert_eq!(rec.get(&100), Some(&Value::U64(200)));
    }

    #[test]
    fn blob_commands_roundtrip_and_interoperate_with_words() {
        let (mgr, s, _adv) = store(&StoreConfig::default());
        let mut h = mgr.register();
        let blob = Value::from_bytes(b"hello, variable-length world");
        let big = Value::from_bytes(&vec![0xAB; 4096]);
        // Blob roundtrip.
        assert_eq!(
            s.exec(&mut h, &Cmd::PutB(1, blob.clone())),
            Ok(CmdOut::PrevB(None))
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::GetB(1)),
            Ok(CmdOut::ValueB(Some(blob.clone())))
        );
        // Word/blob interop: an exactly-8-byte blob IS the word.
        s.exec(&mut h, &Cmd::Put(2, 42)).unwrap();
        assert_eq!(
            s.exec(&mut h, &Cmd::GetB(2)),
            Ok(CmdOut::ValueB(Some(Value::U64(42))))
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::PutB(2, Value::from_bytes(&43u64.to_le_bytes()))
            ),
            Ok(CmdOut::PrevB(Some(Value::U64(42))))
        );
        assert_eq!(s.exec(&mut h, &Cmd::Get(2)), Ok(CmdOut::Value(Some(43))));
        // Fixed-width commands cannot carry a blob: Malformed, nothing lost.
        assert_eq!(s.exec(&mut h, &Cmd::Get(1)), Err(ErrCode::Malformed));
        assert_eq!(
            s.exec(&mut h, &Cmd::MGet(vec![2, 1])),
            Err(ErrCode::Malformed)
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::Transfer {
                    from: 1,
                    to: 2,
                    amount: 1
                }
            ),
            Err(ErrCode::Malformed)
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::GetB(1)),
            Ok(CmdOut::ValueB(Some(blob.clone())))
        );
        // Blob CAS is byte-exact.
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::CasB {
                    key: 1,
                    expected: Value::from_bytes(b"wrong"),
                    desired: big.clone(),
                }
            ),
            Ok(CmdOut::CasB {
                success: false,
                current: Some(blob.clone())
            })
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::CasB {
                    key: 1,
                    expected: blob.clone(),
                    desired: big.clone(),
                }
            ),
            Ok(CmdOut::CasB {
                success: true,
                current: Some(big.clone())
            })
        );
        // Multi-key blob ops and mixed batches.
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::MSetB(vec![(10, Value::from_bytes(b"abc")), (11, Value::U64(7))])
            ),
            Ok(CmdOut::Done)
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::MGetB(vec![10, 11, 12])),
            Ok(CmdOut::ValuesB(vec![
                Some(Value::from_bytes(b"abc")),
                Some(Value::U64(7)),
                None
            ]))
        );
        let out = s
            .exec(
                &mut h,
                &Cmd::Batch(vec![
                    Cmd::GetB(10),
                    Cmd::PutB(12, Value::from_bytes(b"xyz")),
                    Cmd::Del(11),
                    Cmd::DelB(10),
                ]),
            )
            .unwrap();
        assert_eq!(
            out,
            CmdOut::Batch(vec![
                CmdOut::ValueB(Some(Value::from_bytes(b"abc"))),
                CmdOut::PrevB(None),
                CmdOut::Removed(Some(7)),
                CmdOut::RemovedB(Some(Value::from_bytes(b"abc"))),
            ])
        );
        // A legacy op hitting a blob inside a batch aborts the whole batch.
        assert_eq!(
            s.exec(&mut h, &Cmd::Batch(vec![Cmd::Put(20, 1), Cmd::Get(12)])),
            Err(ErrCode::Malformed)
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::Contains(20)),
            Ok(CmdOut::Present(false))
        );
        // Over-limit values are rejected up front.
        let oversized = Value::Bytes(vec![0u8; pmem::MAX_VALUE_BYTES + 1].into());
        assert_eq!(
            s.exec(&mut h, &Cmd::PutB(30, oversized)),
            Err(ErrCode::Malformed)
        );
    }

    #[test]
    fn durable_blob_store_syncs_and_recovers() {
        let cfg = StoreConfig {
            backend: StoreBackend::Durable,
            advancer_period: None,
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        let blob = Value::from_bytes(&vec![9u8; 1000]);
        s.exec(&mut h, &Cmd::PutB(1, blob.clone())).unwrap();
        s.exec(&mut h, &Cmd::Put(2, 22)).unwrap();
        s.sync();
        let rec = s.recover();
        assert_eq!(rec.get(&1), Some(&blob));
        assert_eq!(rec.get(&2), Some(&Value::U64(22)));
    }

    #[test]
    fn durable_store_survives_via_sync_and_recover() {
        let cfg = StoreConfig {
            backend: StoreBackend::Durable,
            advancer_period: None,
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, adv) = store(&cfg);
        assert!(
            adv.is_none(),
            "manual epoch mode must not spawn an advancer"
        );
        let mut h = mgr.register();
        s.exec(&mut h, &Cmd::MSet(vec![(1, 10), (2, 20), (3, 30)]))
            .unwrap();
        assert!(s.recover().is_empty(), "nothing durable before the sync");
        let epoch = s.sync();
        assert!(epoch >= 1, "sync must move the durability horizon: {epoch}");
        let rec = s.recover();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.get(&2), Some(&Value::U64(20)));
        // Un-synced later writes are not in the cut.
        s.exec(&mut h, &Cmd::Put(4, 40)).unwrap();
        assert_eq!(s.recover().len(), 3);
    }

    #[test]
    fn config_validation_is_typed_and_total() {
        fn reject(cfg: StoreConfig) -> ConfigError {
            let mgr = TxManager::with_max_threads(2);
            Store::new(mgr, &cfg)
                .err()
                .expect("config must be rejected")
        }
        assert_eq!(
            reject(StoreConfig {
                shards: 0,
                ..Default::default()
            }),
            ConfigError::NoShards
        );
        assert_eq!(
            reject(StoreConfig {
                buckets_per_shard: Some(0),
                ..Default::default()
            }),
            ConfigError::ZeroBuckets
        );
        // The knob elastic stores used to silently ignore is now refused.
        assert_eq!(
            reject(StoreConfig {
                tables: TableKind::Elastic,
                buckets_per_shard: Some(1),
                ..Default::default()
            }),
            ConfigError::BucketsNotApplicable("elastic")
        );
        assert_eq!(
            reject(StoreConfig {
                tables: TableKind::Skip,
                buckets_per_shard: Some(8),
                ..Default::default()
            }),
            ConfigError::BucketsNotApplicable("skiplist")
        );
        assert_eq!(
            reject(StoreConfig {
                tables: TableKind::Cache { capacity: 0 },
                ..Default::default()
            }),
            ConfigError::CacheNeedsCapacity
        );
        assert_eq!(
            reject(StoreConfig {
                tables: TableKind::Cache { capacity: 4 },
                shards: 8,
                ..Default::default()
            }),
            ConfigError::CacheCapacityBelowShards {
                capacity: 4,
                shards: 8
            }
        );
        assert_eq!(
            reject(StoreConfig {
                tables: TableKind::Cache { capacity: 64 },
                backend: StoreBackend::Durable,
                ..Default::default()
            }),
            ConfigError::DurableCache
        );
        // The knob still works where it applies.
        let mgr = TxManager::with_max_threads(2);
        assert!(Store::new(
            mgr,
            &StoreConfig {
                buckets_per_shard: Some(32),
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn scan_returns_ordered_pages_matching_a_model() {
        let cfg = StoreConfig {
            tables: TableKind::Skip,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        // Stride keys across the whole u64 space so the range partition
        // spreads them over every shard.
        let stride = u64::MAX / 256;
        let mut model = std::collections::BTreeMap::new();
        for i in 0..256u64 {
            let k = i.wrapping_mul(stride);
            s.exec(&mut h, &Cmd::Put(k, i)).unwrap();
            model.insert(k, i);
        }
        let page = |s: &Store, h: &mut ThreadHandle, lo, hi, limit| match s
            .exec(h, &Cmd::Scan { lo, hi, limit })
            .unwrap()
        {
            CmdOut::Page(p) => p,
            other => panic!("scan returned {other:?}"),
        };
        // Full-space window.
        let got = page(&s, &mut h, 0, u64::MAX, 1000);
        let want: Vec<(u64, Value)> = model.iter().map(|(&k, &v)| (k, Value::U64(v))).collect();
        assert_eq!(got, want);
        // A window crossing shard boundaries, with limit truncation.
        let (lo, hi) = (60 * stride, 200 * stride);
        let got = page(&s, &mut h, lo, hi, 17);
        let want: Vec<(u64, Value)> = model
            .range(lo..hi)
            .take(17)
            .map(|(&k, &v)| (k, Value::U64(v)))
            .collect();
        assert_eq!(got.len(), 17);
        assert_eq!(got, want);
        // Empty, inverted, and zero-limit windows are empty pages.
        assert!(page(&s, &mut h, 5, 5, 10).is_empty());
        assert!(page(&s, &mut h, 10, 5, 10).is_empty());
        assert!(page(&s, &mut h, 0, u64::MAX, 0).is_empty());
        // Hash-partitioned namespaces cannot answer a global range query.
        let (mgr2, s2, _adv2) = store(&StoreConfig::default());
        let mut h2 = mgr2.register();
        assert_eq!(
            s2.exec(
                &mut h2,
                &Cmd::Scan {
                    lo: 0,
                    hi: 100,
                    limit: 10
                }
            ),
            Err(ErrCode::Malformed)
        );
        // And SCAN is not a legal batch member.
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::Batch(vec![Cmd::Scan {
                    lo: 0,
                    hi: 1,
                    limit: 1
                }])
            ),
            Err(ErrCode::Malformed)
        );
    }

    #[test]
    fn scan_works_on_the_durable_backend() {
        let cfg = StoreConfig {
            tables: TableKind::Skip,
            backend: StoreBackend::Durable,
            advancer_period: None,
            shards: 2,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        let stride = u64::MAX / 64;
        for i in 0..64u64 {
            s.exec(&mut h, &Cmd::Put(i * stride, i)).unwrap();
        }
        match s
            .exec(
                &mut h,
                &Cmd::Scan {
                    lo: 10 * stride,
                    hi: 20 * stride,
                    limit: 100,
                },
            )
            .unwrap()
        {
            CmdOut::Page(p) => {
                let want: Vec<(u64, Value)> =
                    (10..20).map(|i| (i * stride, Value::U64(i))).collect();
                assert_eq!(p, want);
            }
            other => panic!("scan returned {other:?}"),
        }
        assert_eq!(
            s.stats(&mut h).tables.unwrap().partition,
            PartitionScheme::Range
        );
    }

    #[test]
    fn cache_store_holds_capacity_and_tallies_hits() {
        let cfg = StoreConfig {
            tables: TableKind::Cache { capacity: 64 },
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        for k in 0..500u64 {
            s.exec(&mut h, &Cmd::Put(k, k)).unwrap();
        }
        // The most recent key is still cached; the first admitted is long
        // evicted (no hits so far, so eviction ran pure FIFO).
        assert_eq!(s.exec(&mut h, &Cmd::Get(499)), Ok(CmdOut::Value(Some(499))));
        assert_eq!(s.exec(&mut h, &Cmd::Get(0)), Ok(CmdOut::Value(None)));
        let tables = s.stats(&mut h).tables.unwrap();
        assert_eq!(tables.partition, PartitionScheme::Hash);
        let cache = tables.cache.expect("cache stores report cache tallies");
        assert!(cache.evictions >= 500 - 64);
        assert_eq!((cache.hits, cache.misses), (1, 1));
        let live: u64 = tables
            .shards
            .iter()
            .map(|sh| {
                assert_eq!(sh.kind, ShardKind::Cache);
                assert!(sh.buckets > 0);
                sh.items.expect("cache shards track occupancy")
            })
            .sum();
        assert!(live <= 64, "live entries {live} exceed the capacity");
        // Multi-key and batch commands compose over cache shards too.
        assert_eq!(
            s.exec(&mut h, &Cmd::MGet(vec![499, 0])),
            Ok(CmdOut::Values(vec![Some(499), None]))
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::Batch(vec![Cmd::Put(1000, 1), Cmd::Get(1000)])),
            Ok(CmdOut::Batch(vec![
                CmdOut::Prev(None),
                CmdOut::Value(Some(1))
            ]))
        );
    }
}
