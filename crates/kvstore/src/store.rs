//! The store core: a sharded namespace of transactional tables.
//!
//! A [`Store`] owns `shards` independent nonblocking maps (Michael hash
//! table or skiplist per shard, transient Medley or durable txMontage
//! backend) plus the [`medley::TxManager`] they all share.  Keys hash to
//! shards, so a multi-key command routinely spans several *distinct*
//! nonblocking structures — and because every structure is an NBTC
//! `Composable` on the same manager, the store simply runs the whole command
//! under one [`medley::ThreadHandle::run_with`] and gets multi-structure
//! atomicity for free.  That is the paper's composition claim turned into
//! the product feature: `TRANSFER` debits one map and credits another in a
//! single M-compare-N-swap commit, `MGET` is one descriptor-free atomic
//! snapshot across shards, and a [`Cmd::Batch`] is a small transaction IR
//! executed failure-atomically.
//!
//! Single-key `GET`/`PUT`/`DEL`/`CONTAINS` need no composition and run as
//! standalone operations through [`medley::NonTx`], which monomorphizes the
//! instrumentation away — the service's hot path pays for transactions only
//! when a command actually composes.

use crate::proto::{ShardKind, ShardStats, StatsReply, TableStats};
use medley::{AbortReason, ContentionPolicy, RunConfig, ThreadHandle, TxError, TxManager};
use nbds::{MichaelHashMap, SkipList, SplitOrderedMap};
use pmem::{EpochAdvancer, NvmCostModel, PersistenceDomain, Value};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use txmontage::{Durable, DurableHashMap, DurableSkipList, DurableSplitOrderedMap};

/// A typed store command (the request IR; see [`crate::proto`] for the wire
/// encoding).
///
/// The fixed-width (`u64`) variants are the historical interface; the `*B`
/// variants carry variable-length [`Value`]s.  Both families address the
/// same tables — an 8-byte blob and a word are the *same* value (see
/// [`pmem::value`]'s canonical form) — but a fixed-width command that
/// encounters a longer blob value reports [`ErrCode::Malformed`], because
/// its result type cannot carry the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Look up a key.
    Get(u64),
    /// Insert or replace a key.
    Put(u64, u64),
    /// Remove a key.
    Del(u64),
    /// Compare-and-swap a key's value (fails if absent or mismatched).
    Cas {
        /// Key to update.
        key: u64,
        /// Value the key must currently hold.
        expected: u64,
        /// Replacement value.
        desired: u64,
    },
    /// Membership test (never clones the value).
    Contains(u64),
    /// Atomic multi-key read: one consistent (read-only transactional)
    /// snapshot of all the keys, across shards.
    MGet(Vec<u64>),
    /// Atomic multi-key write: all puts commit together or not at all.
    MSet(Vec<(u64, u64)>),
    /// Move `amount` from one account to another, failure-atomically.
    Transfer {
        /// Debited key.
        from: u64,
        /// Credited key.
        to: u64,
        /// Units to move.
        amount: u64,
    },
    /// A list of single-key commands run as one transaction.
    Batch(Vec<Cmd>),
    /// Blob lookup: like [`Cmd::Get`] but the result carries any value.
    GetB(u64),
    /// Blob insert-or-replace.
    PutB(u64, Value),
    /// Blob remove.
    DelB(u64),
    /// Blob compare-and-swap (byte-exact comparison).
    CasB {
        /// Key to update.
        key: u64,
        /// Value the key must currently hold.
        expected: Value,
        /// Replacement value.
        desired: Value,
    },
    /// Blob-capable atomic multi-key read.
    MGetB(Vec<u64>),
    /// Blob-capable atomic multi-key write.
    MSetB(Vec<(u64, Value)>),
}

/// The result of a committed [`Cmd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmdOut {
    /// `GET`: the value, if present.
    Value(Option<u64>),
    /// `PUT`: the previous value, if any.
    Prev(Option<u64>),
    /// `DEL`: the removed value, if any.
    Removed(Option<u64>),
    /// `CAS` outcome; `current` is the post-operation value.
    Cas {
        /// Whether the swap happened.
        success: bool,
        /// The key's value after the operation (`None` if absent).
        current: Option<u64>,
    },
    /// `CONTAINS` outcome.
    Present(bool),
    /// `MGET`: one entry per requested key, in request order.
    Values(Vec<Option<u64>>),
    /// `MSET` acknowledgement.
    Done,
    /// `TRANSFER`: both post-transfer balances.
    Transferred {
        /// Debited account's balance after the transfer.
        from_after: u64,
        /// Credited account's balance after the transfer.
        to_after: u64,
    },
    /// `BATCH`: one result per command, in order.
    Batch(Vec<CmdOut>),
    /// `GETB`: the value, if present.
    ValueB(Option<Value>),
    /// `PUTB`: the previous value, if any.
    PrevB(Option<Value>),
    /// `DELB`: the removed value, if any.
    RemovedB(Option<Value>),
    /// `CASB` outcome; `current` is the post-operation value.
    CasB {
        /// Whether the swap happened.
        success: bool,
        /// The key's value after the operation (`None` if absent).
        current: Option<Value>,
    },
    /// `MGETB`: one entry per requested key, in request order.
    ValuesB(Vec<Option<Value>>),
}

/// How a command failed (mapped onto the wire's status byte; see the
/// [`crate::proto`] table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Conflict-aborted past the server's retry budget; safe to resend.
    Retry,
    /// Transaction exceeded descriptor capacity; shrink the batch.
    Capacity,
    /// A `TRANSFER` account does not exist.
    NotFound,
    /// `TRANSFER` source balance below the requested amount, or the credit
    /// would overflow the destination balance (nothing changed either way).
    Insufficient,
    /// Load-shed at admission: the server refused to start the command
    /// because it is over its backlog watermark.  Nothing was executed, so
    /// resending (after a jittered delay) is always safe.
    Overload,
    /// Undecodable request, illegal `BATCH` member, or a fixed-width (`u64`)
    /// command that encountered a blob value it cannot represent (use the
    /// `*B` blob commands, which handle every value).
    Malformed,
}

/// Which map implements each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableKind {
    /// Michael hash table per shard (O(1) point ops; the default).
    #[default]
    Hash,
    /// Skiplist per shard.
    Skip,
    /// Alternate hash/skiplist per shard — every cross-shard command then
    /// composes operations on *different* structure types in one
    /// transaction, the paper's headline trick.
    Mixed,
    /// Split-ordered elastic hash table per shard: each shard boots at
    /// [`ELASTIC_BOOT_BUCKETS`] buckets and doubles its directory on-line as
    /// committed inserts accumulate, so
    /// [`StoreConfig::buckets_per_shard`] is **ignored** — there is nothing
    /// to tune.  Resizing is infrastructure work that never joins a
    /// command transaction's footprint (see [`nbds::SplitOrderedMap`]).
    Elastic,
}

/// Initial bucket count of each [`TableKind::Elastic`] shard.  Deliberately
/// tiny relative to real key counts: the point of the elastic table is that
/// the directory finds its own size under load.
pub const ELASTIC_BOOT_BUCKETS: usize = 256;

/// Which runtime backs the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// Transient Medley maps (DRAM only).
    #[default]
    Transient,
    /// Durable txMontage maps: every update allocates/retires payload
    /// records in a [`PersistenceDomain`]; `SYNC` takes a durability cut and
    /// recovery returns the last cut's state.
    Durable,
}

/// Store construction parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of shards (tables) the key space hashes over.
    pub shards: usize,
    /// Map type per shard.
    pub tables: TableKind,
    /// Buckets per hash shard.
    pub buckets_per_shard: usize,
    /// Transient or durable tables.
    pub backend: StoreBackend,
    /// Conflict-retry budget per command before reporting
    /// [`ErrCode::Retry`] to the client.
    pub max_retries: u64,
    /// How command transactions wait between conflict retries (the
    /// [`medley::ContentionPolicy`] passed to every `run_with`).  The
    /// adaptive policy is what the overload harness A/Bs against the
    /// default exponential backoff.
    pub contention: ContentionPolicy,
    /// Durable mode: period of the background epoch advancer, or `None` to
    /// leave the epoch clock manual (only [`Store::sync`] advances it —
    /// used by restart tests that need a deterministic durability cut).
    pub advancer_period: Option<Duration>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            tables: TableKind::Hash,
            buckets_per_shard: 1 << 10,
            backend: StoreBackend::Transient,
            max_retries: 256,
            contention: ContentionPolicy::Backoff,
            advancer_period: Some(Duration::from_micros(200)),
        }
    }
}

/// One shard's table.  Every variant stores [`Value`]s and operates over the
/// same `TxManager`, which is what lets a single transaction span any mix of
/// them.
enum Table {
    Hash(MichaelHashMap<Value>),
    Skip(SkipList<Value>),
    Elastic(SplitOrderedMap<Value>),
    DurableHash(DurableHashMap<Value>),
    DurableSkip(DurableSkipList<Value>),
    DurableElastic(DurableSplitOrderedMap<Value>),
}

macro_rules! on_table {
    ($table:expr, $m:ident => $body:expr) => {
        match $table {
            Table::Hash($m) => $body,
            Table::Skip($m) => $body,
            Table::Elastic($m) => $body,
            Table::DurableHash($m) => $body,
            Table::DurableSkip($m) => $body,
            Table::DurableElastic($m) => $body,
        }
    };
}

impl Table {
    fn get<C: medley::Ctx>(&self, cx: &mut C, key: u64) -> Option<Value> {
        on_table!(self, m => m.get(cx, key))
    }
    fn insert_or_replace<C: medley::Ctx>(&self, cx: &mut C, key: u64, val: Value) -> Option<Value> {
        on_table!(self, m => m.put(cx, key, val))
    }
    fn remove<C: medley::Ctx>(&self, cx: &mut C, key: u64) -> Option<Value> {
        on_table!(self, m => m.remove(cx, key))
    }
    fn contains<C: medley::Ctx>(&self, cx: &mut C, key: u64) -> bool {
        on_table!(self, m => m.contains(cx, key))
    }
    /// The shard's entry in the `STATS` table section.  Counts are relaxed
    /// snapshots — consistent enough for capacity monitoring, not a
    /// linearizable size.
    fn shard_stats(&self) -> ShardStats {
        match self {
            Table::Hash(m) => ShardStats {
                kind: ShardKind::Hash,
                items: Some(m.len()),
                buckets: m.bucket_count() as u64,
            },
            Table::DurableHash(m) => ShardStats {
                kind: ShardKind::Hash,
                items: Some(m.inner().len()),
                buckets: m.inner().bucket_count() as u64,
            },
            Table::Skip(_) | Table::DurableSkip(_) => ShardStats {
                kind: ShardKind::Skip,
                items: None,
                buckets: 0,
            },
            Table::Elastic(m) => ShardStats {
                kind: ShardKind::Elastic,
                items: Some(m.len()),
                buckets: m.buckets(),
            },
            Table::DurableElastic(m) => ShardStats {
                kind: ShardKind::Elastic,
                items: Some(m.inner().len()),
                buckets: m.inner().buckets(),
            },
        }
    }
    /// Directory doublings so far (elastic shards; `0` otherwise).
    fn grow_events(&self) -> u64 {
        match self {
            Table::Elastic(m) => m.grow_events(),
            Table::DurableElastic(m) => m.inner().grow_events(),
            _ => 0,
        }
    }
}

/// Converts a value read by a fixed-width (`u64`) command; a blob cannot be
/// carried by the `u64` result types, so the command reports
/// [`ErrCode::Malformed`] (the `*B` commands handle every value).
fn word(v: Option<Value>) -> Result<Option<u64>, ErrCode> {
    match v {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(ErrCode::Malformed),
    }
}

/// In-transaction form of [`word`]: on a blob value, records the error code
/// and aborts the surrounding transaction (nothing commits).
macro_rules! word_or_abort {
    ($t:expr, $why:expr, $v:expr) => {
        match word($v) {
            Ok(v) => v,
            Err(e) => {
                $why.set(e);
                return Err($t.abort(AbortReason::Explicit));
            }
        }
    };
}

/// The sharded transactional store (see the module docs).
pub struct Store {
    mgr: Arc<TxManager>,
    tables: Vec<Table>,
    domain: Option<Arc<PersistenceDomain>>,
    run_cfg: RunConfig,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("shards", &self.tables.len())
            .field("durable", &self.domain.is_some())
            .finish()
    }
}

impl Store {
    /// Builds a store on `mgr`.  Returns the store and, in durable mode with
    /// an [`StoreConfig::advancer_period`], the running [`EpochAdvancer`]
    /// (the caller owns its shutdown so drain order is explicit).
    pub fn new(mgr: Arc<TxManager>, cfg: &StoreConfig) -> (Self, Option<EpochAdvancer>) {
        assert!(cfg.shards > 0, "store needs at least one shard");
        let domain = match cfg.backend {
            StoreBackend::Transient => None,
            // Count-only NVM model, as in the throughput harness: the
            // service measures runtime bookkeeping, not simulated Optane
            // stalls.
            StoreBackend::Durable => {
                Some(PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO))
            }
        };
        let tables = (0..cfg.shards)
            .map(|i| {
                let kind = match cfg.tables {
                    TableKind::Hash => ShardKind::Hash,
                    TableKind::Skip => ShardKind::Skip,
                    TableKind::Mixed => {
                        if i % 2 == 1 {
                            ShardKind::Skip
                        } else {
                            ShardKind::Hash
                        }
                    }
                    TableKind::Elastic => ShardKind::Elastic,
                };
                match (&domain, kind) {
                    (None, ShardKind::Hash) => {
                        Table::Hash(MichaelHashMap::with_buckets(cfg.buckets_per_shard))
                    }
                    (None, ShardKind::Skip) => Table::Skip(SkipList::new()),
                    (None, ShardKind::Elastic) => {
                        Table::Elastic(SplitOrderedMap::with_buckets(ELASTIC_BOOT_BUCKETS))
                    }
                    (Some(d), ShardKind::Hash) => Table::DurableHash(Durable::new(
                        MichaelHashMap::with_buckets(cfg.buckets_per_shard),
                        Arc::clone(d),
                    )),
                    (Some(d), ShardKind::Skip) => {
                        Table::DurableSkip(Durable::new(SkipList::new(), Arc::clone(d)))
                    }
                    (Some(d), ShardKind::Elastic) => Table::DurableElastic(
                        DurableSplitOrderedMap::split_ordered(ELASTIC_BOOT_BUCKETS, Arc::clone(d)),
                    ),
                }
            })
            .collect();
        let advancer = match (&domain, cfg.advancer_period) {
            (Some(d), Some(period)) => Some(EpochAdvancer::spawn(Arc::clone(d), period)),
            _ => None,
        };
        (
            Self {
                mgr,
                tables,
                domain,
                run_cfg: RunConfig::new()
                    .max_retries(cfg.max_retries)
                    .backoff_limit(8)
                    .contention_policy(cfg.contention),
            },
            advancer,
        )
    }

    /// The transaction manager all shards share.
    pub fn manager(&self) -> &Arc<TxManager> {
        &self.mgr
    }

    /// The persistence domain (durable stores only).
    pub fn domain(&self) -> Option<&Arc<PersistenceDomain>> {
        self.domain.as_ref()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.tables.len()
    }

    /// The shard a key lives in (Fibonacci hash so dense *and* strided key
    /// patterns both spread; a plain `key % shards` would pin every client
    /// that strides by the shard count onto one table).
    #[inline]
    fn table(&self, key: u64) -> &Table {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.tables[(h % self.tables.len() as u64) as usize]
    }

    /// Maps the terminal [`TxError`] of a command transaction onto the wire
    /// error code.  `Conflict` cannot reach here (the retry loop absorbs
    /// it); `Explicit` only escapes `TRANSFER`, which records its own code.
    fn map_tx_err(e: TxError) -> ErrCode {
        match e {
            TxError::RetriesExhausted => ErrCode::Retry,
            TxError::CapacityExceeded => ErrCode::Capacity,
            _ => ErrCode::Retry,
        }
    }

    /// Executes one command through `h`.  Single-key reads/writes run
    /// standalone; everything that composes runs as one transaction under
    /// the store's retry budget.
    pub fn exec(&self, h: &mut ThreadHandle, cmd: &Cmd) -> Result<CmdOut, ErrCode> {
        match cmd {
            Cmd::Get(k) => Ok(CmdOut::Value(word(self.table(*k).get(&mut h.nontx(), *k))?)),
            Cmd::Put(k, v) => Ok(CmdOut::Prev(word(self.table(*k).insert_or_replace(
                &mut h.nontx(),
                *k,
                Value::U64(*v),
            ))?)),
            Cmd::Del(k) => Ok(CmdOut::Removed(word(
                self.table(*k).remove(&mut h.nontx(), *k),
            )?)),
            Cmd::Contains(k) => Ok(CmdOut::Present(self.table(*k).contains(&mut h.nontx(), *k))),
            Cmd::GetB(k) => Ok(CmdOut::ValueB(self.table(*k).get(&mut h.nontx(), *k))),
            Cmd::PutB(k, v) => {
                Self::check_len(v)?;
                Ok(CmdOut::PrevB(self.table(*k).insert_or_replace(
                    &mut h.nontx(),
                    *k,
                    v.clone(),
                )))
            }
            Cmd::DelB(k) => Ok(CmdOut::RemovedB(self.table(*k).remove(&mut h.nontx(), *k))),
            Cmd::Cas {
                key,
                expected,
                desired,
            } => {
                let table = self.table(*key);
                let why = Cell::new(ErrCode::Retry);
                h.run_with(&self.run_cfg, |t| {
                    let current = table.get(t, *key);
                    if current == Some(Value::U64(*expected)) {
                        table.insert_or_replace(t, *key, Value::U64(*desired));
                        Ok(CmdOut::Cas {
                            success: true,
                            current: Some(*desired),
                        })
                    } else {
                        Ok(CmdOut::Cas {
                            success: false,
                            current: word_or_abort!(t, why, current),
                        })
                    }
                })
                .map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
            Cmd::CasB {
                key,
                expected,
                desired,
            } => {
                Self::check_len(desired)?;
                let table = self.table(*key);
                h.run_with(&self.run_cfg, |t| {
                    let current = table.get(t, *key);
                    if current.as_ref() == Some(expected) {
                        table.insert_or_replace(t, *key, desired.clone());
                        Ok(CmdOut::CasB {
                            success: true,
                            current: Some(desired.clone()),
                        })
                    } else {
                        Ok(CmdOut::CasB {
                            success: false,
                            current,
                        })
                    }
                })
                .map_err(Self::map_tx_err)
            }
            Cmd::MGet(keys) => {
                let why = Cell::new(ErrCode::Retry);
                h.run_with(&self.run_cfg, |t| {
                    let mut vals = Vec::with_capacity(keys.len());
                    for &k in keys {
                        vals.push(word_or_abort!(t, why, self.table(k).get(t, k)));
                    }
                    Ok(CmdOut::Values(vals))
                })
                .map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
            Cmd::MGetB(keys) => h
                .run_with(&self.run_cfg, |t| {
                    Ok(CmdOut::ValuesB(
                        keys.iter().map(|&k| self.table(k).get(t, k)).collect(),
                    ))
                })
                .map_err(Self::map_tx_err),
            Cmd::MSet(pairs) => h
                .run_with(&self.run_cfg, |t| {
                    for &(k, v) in pairs {
                        self.table(k).insert_or_replace(t, k, Value::U64(v));
                    }
                    Ok(CmdOut::Done)
                })
                .map_err(Self::map_tx_err),
            Cmd::MSetB(pairs) => {
                for (_, v) in pairs {
                    Self::check_len(v)?;
                }
                h.run_with(&self.run_cfg, |t| {
                    for (k, v) in pairs {
                        self.table(*k).insert_or_replace(t, *k, v.clone());
                    }
                    Ok(CmdOut::Done)
                })
                .map_err(Self::map_tx_err)
            }
            Cmd::Transfer { from, to, amount } => {
                if from == to {
                    // A self-transfer is a (possibly failing) balance probe.
                    let bal = word(self.table(*from).get(&mut h.nontx(), *from))?;
                    return match bal {
                        None => Err(ErrCode::NotFound),
                        Some(b) if b < *amount => Err(ErrCode::Insufficient),
                        Some(b) => Ok(CmdOut::Transferred {
                            from_after: b,
                            to_after: b,
                        }),
                    };
                }
                // The closure aborts explicitly on business-rule failures;
                // the cell carries *which* rule fired out of the retry loop.
                let why = Cell::new(ErrCode::Retry);
                let res = h.run_with(&self.run_cfg, |t| {
                    let Some(a) = word_or_abort!(t, why, self.table(*from).get(t, *from)) else {
                        why.set(ErrCode::NotFound);
                        return Err(t.abort(AbortReason::Explicit));
                    };
                    let Some(b) = word_or_abort!(t, why, self.table(*to).get(t, *to)) else {
                        why.set(ErrCode::NotFound);
                        return Err(t.abort(AbortReason::Explicit));
                    };
                    if a < *amount {
                        why.set(ErrCode::Insufficient);
                        return Err(t.abort(AbortReason::Explicit));
                    }
                    // The credit side must be guarded too: an unchecked
                    // `b + amount` is wire-reachable overflow (worker panic
                    // under debug overflow checks, silently wrapped — i.e.
                    // destroyed — balance in release).
                    let Some(credited) = b.checked_add(*amount) else {
                        why.set(ErrCode::Insufficient);
                        return Err(t.abort(AbortReason::Explicit));
                    };
                    self.table(*from)
                        .insert_or_replace(t, *from, Value::U64(a - *amount));
                    self.table(*to)
                        .insert_or_replace(t, *to, Value::U64(credited));
                    Ok(CmdOut::Transferred {
                        from_after: a - *amount,
                        to_after: credited,
                    })
                });
                res.map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
            Cmd::Batch(cmds) => {
                // Validate the IR before opening the transaction: only
                // single-key commands may appear (the codec enforces this on
                // the wire; in-process callers get the same rule).
                for c in cmds {
                    match c {
                        Cmd::Get(_)
                        | Cmd::Put(..)
                        | Cmd::Del(_)
                        | Cmd::Cas { .. }
                        | Cmd::Contains(_)
                        | Cmd::GetB(_)
                        | Cmd::DelB(_) => {}
                        Cmd::PutB(_, v) => Self::check_len(v)?,
                        Cmd::CasB { desired, .. } => Self::check_len(desired)?,
                        _ => return Err(ErrCode::Malformed),
                    }
                }
                let why = Cell::new(ErrCode::Retry);
                h.run_with(&self.run_cfg, |t| {
                    let mut outs = Vec::with_capacity(cmds.len());
                    for c in cmds {
                        outs.push(match c {
                            Cmd::Get(k) => {
                                CmdOut::Value(word_or_abort!(t, why, self.table(*k).get(t, *k)))
                            }
                            Cmd::Put(k, v) => CmdOut::Prev(word_or_abort!(
                                t,
                                why,
                                self.table(*k).insert_or_replace(t, *k, Value::U64(*v))
                            )),
                            Cmd::Del(k) => CmdOut::Removed(word_or_abort!(
                                t,
                                why,
                                self.table(*k).remove(t, *k)
                            )),
                            Cmd::Contains(k) => CmdOut::Present(self.table(*k).contains(t, *k)),
                            Cmd::GetB(k) => CmdOut::ValueB(self.table(*k).get(t, *k)),
                            Cmd::PutB(k, v) => {
                                CmdOut::PrevB(self.table(*k).insert_or_replace(t, *k, v.clone()))
                            }
                            Cmd::DelB(k) => CmdOut::RemovedB(self.table(*k).remove(t, *k)),
                            Cmd::Cas {
                                key,
                                expected,
                                desired,
                            } => {
                                let current = self.table(*key).get(t, *key);
                                if current == Some(Value::U64(*expected)) {
                                    self.table(*key).insert_or_replace(
                                        t,
                                        *key,
                                        Value::U64(*desired),
                                    );
                                    CmdOut::Cas {
                                        success: true,
                                        current: Some(*desired),
                                    }
                                } else {
                                    CmdOut::Cas {
                                        success: false,
                                        current: word_or_abort!(t, why, current),
                                    }
                                }
                            }
                            Cmd::CasB {
                                key,
                                expected,
                                desired,
                            } => {
                                let current = self.table(*key).get(t, *key);
                                if current.as_ref() == Some(expected) {
                                    self.table(*key).insert_or_replace(t, *key, desired.clone());
                                    CmdOut::CasB {
                                        success: true,
                                        current: Some(desired.clone()),
                                    }
                                } else {
                                    CmdOut::CasB {
                                        success: false,
                                        current,
                                    }
                                }
                            }
                            _ => unreachable!("validated above"),
                        });
                    }
                    Ok(CmdOut::Batch(outs))
                })
                .map_err(|e| match e {
                    TxError::Explicit => why.get(),
                    other => Self::map_tx_err(other),
                })
            }
        }
    }

    /// Rejects over-limit blob values before any table is touched.
    #[inline]
    fn check_len(v: &Value) -> Result<(), ErrCode> {
        if v.byte_len() > pmem::MAX_VALUE_BYTES {
            Err(ErrCode::Malformed)
        } else {
            Ok(())
        }
    }

    /// Aggregated statistics (the `STATS` admin command).  `h` is the
    /// calling worker's handle: its local tallies are flushed first so the
    /// snapshot includes at least everything this worker completed.
    pub fn stats(&self, h: &mut ThreadHandle) -> StatsReply {
        h.flush_stats();
        StatsReply {
            tx: self.mgr.stats_snapshot(),
            domain: self.domain.as_ref().map(|d| d.stats()),
            // Admission control and the event loop live in the server; a
            // bare store has neither.
            load: None,
            events: None,
            tables: Some(TableStats {
                grow_events: self.tables.iter().map(Table::grow_events).sum(),
                shards: self.tables.iter().map(Table::shard_stats).collect(),
            }),
        }
    }

    /// Durability cut (the `SYNC` admin command): on a durable store, every
    /// operation completed before the call is recoverable afterwards
    /// (nbMontage's wait-free sync — epoch advances plus write-back, never
    /// blocking concurrent updaters).  Returns the persisted epoch of the
    /// cut; a transient store is a no-op reporting epoch 0.
    pub fn sync(&self) -> u64 {
        match &self.domain {
            Some(d) => {
                d.sync();
                d.stats().persisted_epoch
            }
            None => 0,
        }
    }

    /// Simulated post-crash recovery of a durable store: the key/value map
    /// as of the last durability horizon (union over all shards, which
    /// share one domain).  Transient stores recover empty.
    pub fn recover(&self) -> HashMap<u64, Value> {
        match &self.domain {
            Some(d) => d.recover(),
            None => HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cfg: &StoreConfig) -> (Arc<TxManager>, Store, Option<EpochAdvancer>) {
        let mgr = TxManager::with_max_threads(16);
        let (s, adv) = Store::new(Arc::clone(&mgr), cfg);
        (mgr, s, adv)
    }

    #[test]
    fn single_key_commands_roundtrip() {
        for tables in [
            TableKind::Hash,
            TableKind::Skip,
            TableKind::Mixed,
            TableKind::Elastic,
        ] {
            let cfg = StoreConfig {
                tables,
                shards: 4,
                ..Default::default()
            };
            let (mgr, s, _adv) = store(&cfg);
            let mut h = mgr.register();
            assert_eq!(s.exec(&mut h, &Cmd::Get(1)), Ok(CmdOut::Value(None)));
            assert_eq!(s.exec(&mut h, &Cmd::Put(1, 10)), Ok(CmdOut::Prev(None)));
            assert_eq!(s.exec(&mut h, &Cmd::Put(1, 11)), Ok(CmdOut::Prev(Some(10))));
            assert_eq!(s.exec(&mut h, &Cmd::Get(1)), Ok(CmdOut::Value(Some(11))));
            assert_eq!(s.exec(&mut h, &Cmd::Contains(1)), Ok(CmdOut::Present(true)));
            assert_eq!(s.exec(&mut h, &Cmd::Del(1)), Ok(CmdOut::Removed(Some(11))));
            assert_eq!(
                s.exec(&mut h, &Cmd::Contains(1)),
                Ok(CmdOut::Present(false))
            );
        }
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let (mgr, s, _adv) = store(&StoreConfig::default());
        let mut h = mgr.register();
        let miss = s.exec(
            &mut h,
            &Cmd::Cas {
                key: 5,
                expected: 0,
                desired: 1,
            },
        );
        assert_eq!(
            miss,
            Ok(CmdOut::Cas {
                success: false,
                current: None
            })
        );
        s.exec(&mut h, &Cmd::Put(5, 50)).unwrap();
        let hit = s.exec(
            &mut h,
            &Cmd::Cas {
                key: 5,
                expected: 50,
                desired: 51,
            },
        );
        assert_eq!(
            hit,
            Ok(CmdOut::Cas {
                success: true,
                current: Some(51)
            })
        );
        assert_eq!(s.exec(&mut h, &Cmd::Get(5)), Ok(CmdOut::Value(Some(51))));
    }

    #[test]
    fn multikey_commands_span_shards_atomically() {
        // Mixed tables: keys land on hash *and* skiplist shards, so these
        // transactions compose different structure types.
        let cfg = StoreConfig {
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        let pairs: Vec<(u64, u64)> = (0..32).map(|k| (k, 1000)).collect();
        assert_eq!(s.exec(&mut h, &Cmd::MSet(pairs.clone())), Ok(CmdOut::Done));
        let keys: Vec<u64> = pairs.iter().map(|(k, _)| *k).collect();
        let got = s.exec(&mut h, &Cmd::MGet(keys)).unwrap();
        assert_eq!(got, CmdOut::Values(vec![Some(1000); 32]));

        let t = s
            .exec(
                &mut h,
                &Cmd::Transfer {
                    from: 0,
                    to: 1,
                    amount: 400,
                },
            )
            .unwrap();
        assert_eq!(
            t,
            CmdOut::Transferred {
                from_after: 600,
                to_after: 1400
            }
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::Transfer {
                    from: 0,
                    to: 1,
                    amount: 601,
                },
            ),
            Err(ErrCode::Insufficient)
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::Transfer {
                    from: 999,
                    to: 1,
                    amount: 1,
                },
            ),
            Err(ErrCode::NotFound)
        );
        // Failed transfers changed nothing.
        let got = s.exec(&mut h, &Cmd::MGet(vec![0, 1])).unwrap();
        assert_eq!(got, CmdOut::Values(vec![Some(600), Some(1400)]));
    }

    #[test]
    fn batch_runs_as_one_transaction() {
        let (mgr, s, _adv) = store(&StoreConfig::default());
        let mut h = mgr.register();
        s.exec(&mut h, &Cmd::Put(1, 10)).unwrap();
        let out = s
            .exec(
                &mut h,
                &Cmd::Batch(vec![
                    Cmd::Get(1),
                    Cmd::Put(2, 20),
                    Cmd::Cas {
                        key: 1,
                        expected: 10,
                        desired: 12,
                    },
                    Cmd::Del(1),
                ]),
            )
            .unwrap();
        assert_eq!(
            out,
            CmdOut::Batch(vec![
                CmdOut::Value(Some(10)),
                CmdOut::Prev(None),
                CmdOut::Cas {
                    success: true,
                    current: Some(12)
                },
                CmdOut::Removed(Some(12)),
            ])
        );
        // Multi-key commands are rejected inside a batch.
        assert_eq!(
            s.exec(&mut h, &Cmd::Batch(vec![Cmd::MGet(vec![1])])),
            Err(ErrCode::Malformed)
        );
        h.flush_stats();
        assert!(mgr.stats_snapshot().general_commits >= 1);
    }

    #[test]
    fn elastic_store_grows_under_load_and_reports_it() {
        let cfg = StoreConfig {
            tables: TableKind::Elastic,
            shards: 4,
            // Deliberately absurd: elastic shards must ignore this knob.
            buckets_per_shard: 1,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        // Enough keys to push every shard's load factor over the threshold
        // several times over (4 shards × 256 boot buckets × factor 4).
        let n: u64 = 40_000;
        for chunk in (0..n).collect::<Vec<_>>().chunks(512) {
            let pairs: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k + 1)).collect();
            assert_eq!(s.exec(&mut h, &Cmd::MSet(pairs)), Ok(CmdOut::Done));
        }
        for k in [0, 1, n / 2, n - 1] {
            assert_eq!(s.exec(&mut h, &Cmd::Get(k)), Ok(CmdOut::Value(Some(k + 1))));
        }
        let stats = s.stats(&mut h);
        let tables = stats.tables.expect("store stats always carry tables");
        assert_eq!(tables.shards.len(), 4);
        assert!(
            tables.grow_events > 0,
            "40k inserts into 4×256 boot buckets must double directories"
        );
        let mut items_total = 0;
        for sh in &tables.shards {
            assert_eq!(sh.kind, ShardKind::Elastic);
            assert!(
                sh.buckets > ELASTIC_BOOT_BUCKETS as u64,
                "shard still at boot size: {} buckets",
                sh.buckets
            );
            items_total += sh.items.expect("elastic shards maintain a counter");
        }
        assert_eq!(items_total, n, "per-shard counters must sum to key count");
    }

    #[test]
    fn stats_tables_section_reflects_table_kinds() {
        let cfg = StoreConfig {
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        s.exec(&mut h, &Cmd::MSet((0..64).map(|k| (k, k)).collect()))
            .unwrap();
        let tables = s.stats(&mut h).tables.unwrap();
        assert_eq!(tables.grow_events, 0, "fixed tables never grow");
        assert_eq!(tables.shards.len(), 4);
        let hash_items: u64 = tables
            .shards
            .iter()
            .filter(|sh| sh.kind == ShardKind::Hash)
            .map(|sh| {
                assert!(sh.buckets > 0);
                sh.items.expect("hash shards maintain a counter")
            })
            .sum();
        assert!(hash_items > 0, "some keys must land on hash shards");
        for sh in tables.shards.iter().filter(|sh| sh.kind == ShardKind::Skip) {
            assert_eq!(sh.items, None);
            assert_eq!(sh.buckets, 0);
        }
    }

    #[test]
    fn durable_elastic_store_syncs_and_recovers() {
        let cfg = StoreConfig {
            backend: StoreBackend::Durable,
            advancer_period: None,
            tables: TableKind::Elastic,
            shards: 2,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        let n: u64 = 8_192;
        for chunk in (0..n).collect::<Vec<_>>().chunks(512) {
            let pairs: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, k * 2)).collect();
            s.exec(&mut h, &Cmd::MSet(pairs)).unwrap();
        }
        let tables = s.stats(&mut h).tables.unwrap();
        assert!(
            tables.grow_events > 0,
            "durable elastic shards must grow too"
        );
        s.sync();
        let rec = s.recover();
        assert_eq!(rec.len(), n as usize);
        assert_eq!(rec.get(&100), Some(&Value::U64(200)));
    }

    #[test]
    fn blob_commands_roundtrip_and_interoperate_with_words() {
        let (mgr, s, _adv) = store(&StoreConfig::default());
        let mut h = mgr.register();
        let blob = Value::from_bytes(b"hello, variable-length world");
        let big = Value::from_bytes(&vec![0xAB; 4096]);
        // Blob roundtrip.
        assert_eq!(
            s.exec(&mut h, &Cmd::PutB(1, blob.clone())),
            Ok(CmdOut::PrevB(None))
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::GetB(1)),
            Ok(CmdOut::ValueB(Some(blob.clone())))
        );
        // Word/blob interop: an exactly-8-byte blob IS the word.
        s.exec(&mut h, &Cmd::Put(2, 42)).unwrap();
        assert_eq!(
            s.exec(&mut h, &Cmd::GetB(2)),
            Ok(CmdOut::ValueB(Some(Value::U64(42))))
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::PutB(2, Value::from_bytes(&43u64.to_le_bytes()))
            ),
            Ok(CmdOut::PrevB(Some(Value::U64(42))))
        );
        assert_eq!(s.exec(&mut h, &Cmd::Get(2)), Ok(CmdOut::Value(Some(43))));
        // Fixed-width commands cannot carry a blob: Malformed, nothing lost.
        assert_eq!(s.exec(&mut h, &Cmd::Get(1)), Err(ErrCode::Malformed));
        assert_eq!(
            s.exec(&mut h, &Cmd::MGet(vec![2, 1])),
            Err(ErrCode::Malformed)
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::Transfer {
                    from: 1,
                    to: 2,
                    amount: 1
                }
            ),
            Err(ErrCode::Malformed)
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::GetB(1)),
            Ok(CmdOut::ValueB(Some(blob.clone())))
        );
        // Blob CAS is byte-exact.
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::CasB {
                    key: 1,
                    expected: Value::from_bytes(b"wrong"),
                    desired: big.clone(),
                }
            ),
            Ok(CmdOut::CasB {
                success: false,
                current: Some(blob.clone())
            })
        );
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::CasB {
                    key: 1,
                    expected: blob.clone(),
                    desired: big.clone(),
                }
            ),
            Ok(CmdOut::CasB {
                success: true,
                current: Some(big.clone())
            })
        );
        // Multi-key blob ops and mixed batches.
        assert_eq!(
            s.exec(
                &mut h,
                &Cmd::MSetB(vec![(10, Value::from_bytes(b"abc")), (11, Value::U64(7))])
            ),
            Ok(CmdOut::Done)
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::MGetB(vec![10, 11, 12])),
            Ok(CmdOut::ValuesB(vec![
                Some(Value::from_bytes(b"abc")),
                Some(Value::U64(7)),
                None
            ]))
        );
        let out = s
            .exec(
                &mut h,
                &Cmd::Batch(vec![
                    Cmd::GetB(10),
                    Cmd::PutB(12, Value::from_bytes(b"xyz")),
                    Cmd::Del(11),
                    Cmd::DelB(10),
                ]),
            )
            .unwrap();
        assert_eq!(
            out,
            CmdOut::Batch(vec![
                CmdOut::ValueB(Some(Value::from_bytes(b"abc"))),
                CmdOut::PrevB(None),
                CmdOut::Removed(Some(7)),
                CmdOut::RemovedB(Some(Value::from_bytes(b"abc"))),
            ])
        );
        // A legacy op hitting a blob inside a batch aborts the whole batch.
        assert_eq!(
            s.exec(&mut h, &Cmd::Batch(vec![Cmd::Put(20, 1), Cmd::Get(12)])),
            Err(ErrCode::Malformed)
        );
        assert_eq!(
            s.exec(&mut h, &Cmd::Contains(20)),
            Ok(CmdOut::Present(false))
        );
        // Over-limit values are rejected up front.
        let oversized = Value::Bytes(vec![0u8; pmem::MAX_VALUE_BYTES + 1].into());
        assert_eq!(
            s.exec(&mut h, &Cmd::PutB(30, oversized)),
            Err(ErrCode::Malformed)
        );
    }

    #[test]
    fn durable_blob_store_syncs_and_recovers() {
        let cfg = StoreConfig {
            backend: StoreBackend::Durable,
            advancer_period: None,
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, _adv) = store(&cfg);
        let mut h = mgr.register();
        let blob = Value::from_bytes(&vec![9u8; 1000]);
        s.exec(&mut h, &Cmd::PutB(1, blob.clone())).unwrap();
        s.exec(&mut h, &Cmd::Put(2, 22)).unwrap();
        s.sync();
        let rec = s.recover();
        assert_eq!(rec.get(&1), Some(&blob));
        assert_eq!(rec.get(&2), Some(&Value::U64(22)));
    }

    #[test]
    fn durable_store_survives_via_sync_and_recover() {
        let cfg = StoreConfig {
            backend: StoreBackend::Durable,
            advancer_period: None,
            tables: TableKind::Mixed,
            shards: 4,
            ..Default::default()
        };
        let (mgr, s, adv) = store(&cfg);
        assert!(
            adv.is_none(),
            "manual epoch mode must not spawn an advancer"
        );
        let mut h = mgr.register();
        s.exec(&mut h, &Cmd::MSet(vec![(1, 10), (2, 20), (3, 30)]))
            .unwrap();
        assert!(s.recover().is_empty(), "nothing durable before the sync");
        let epoch = s.sync();
        assert!(epoch >= 1, "sync must move the durability horizon: {epoch}");
        let rec = s.recover();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.get(&2), Some(&Value::U64(20)));
        // Un-synced later writes are not in the cut.
        s.exec(&mut h, &Cmd::Put(4, 40)).unwrap();
        assert_eq!(s.recover().len(), 3);
    }
}
