//! Thin Linux syscall bindings for the event-driven server.
//!
//! The workspace deliberately has no external dependencies, so the few
//! kernel interfaces the server needs beyond `std` — **epoll**, **eventfd**,
//! and **rlimit** — are bound here directly against libc (which every Rust
//! binary already links).  Everything `unsafe` is confined to this module;
//! the rest of the crate sees three safe wrappers:
//!
//! * [`Epoll`] — an owned `epoll(7)` instance: add/modify/delete interest,
//!   wait for readiness.  The server runs it **level-triggered**: interest
//!   masks are recomputed from connection state after every pump and
//!   `EPOLL_CTL_MOD` is issued only when the mask actually changes, so a
//!   socket with nothing to say costs nothing and a partially-written
//!   response re-arms `EPOLLOUT` simply by keeping bytes queued.
//! * [`WakeFd`] — a nonblocking `eventfd(2)` used as a cross-thread doorbell:
//!   the acceptor rings it after handing a worker a new connection, and
//!   shutdown rings every worker.  Readable ⇒ at least one wake happened;
//!   [`WakeFd::drain`] resets it.
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE`'s soft limit to the hard
//!   limit, which is what lets one process hold hundreds of pipelined
//!   connections (each is a file descriptor) without `EMFILE`.

use std::io;
use std::os::fd::{AsRawFd, RawFd};

// Values from the Linux UAPI headers (x86_64/aarch64 share all of these).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Readiness bit: the fd has bytes to read (or a peer hang-up to observe).
pub const EPOLLIN: u32 = 0x001;
/// Readiness bit: the fd can accept writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const RLIMIT_NOFILE: i32 = 7;
const SOL_SOCKET: i32 = 1;
const SO_RCVBUF: i32 = 8;

/// One readiness record returned by `epoll_wait`.
///
/// Matches the kernel's `struct epoll_event` ABI: packed on x86_64 (the
/// kernel declares it `__attribute__((packed))` there so 32- and 64-bit
/// layouts agree), naturally aligned elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask ([`EPOLLIN`] | [`EPOLLOUT`] | ...).
    pub events: u32,
    /// The caller-chosen token registered with the fd (the server stores the
    /// connection's slab slot here).
    pub data: u64,
}

impl EpollEvent {
    /// An empty record for pre-sizing wait buffers.
    pub const fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance (closed on drop).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Replaces `fd`'s interest mask (same token semantics as [`Epoll::add`]).
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregisters `fd`.  Closing the fd deregisters implicitly; this exists
    /// for the paths that keep the fd alive.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event pointer is ignored for DEL on kernels ≥ 2.6.9 but must
        // be non-null for portability.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (0 = poll, bounded, never negative) for
    /// readiness; fills `events` and returns how many records are valid.
    /// Retries `EINTR` internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// A nonblocking eventfd doorbell (closed on drop).
///
/// Safe to ring from any thread while the owning worker waits on it through
/// its [`Epoll`]; ringing coalesces (the counter accumulates), so a burst of
/// wakes costs one readable event.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Creates the doorbell.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Self { fd })
    }

    /// Rings the doorbell.  A full counter (`EAGAIN`) already guarantees the
    /// waiter will wake, so that case is success; other errors are ignored
    /// too — a missed wake degrades latency by one poll timeout, never
    /// correctness.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, one.to_ne_bytes().as_ptr(), 8);
        }
    }

    /// Resets the doorbell (reads the counter down to zero).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl AsRawFd for WakeFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// Raises `RLIMIT_NOFILE`'s soft limit to the hard limit.
///
/// Returns `(previous_soft, new_soft)`.  Already-maximal limits return
/// without a `setrlimit` call.  Servers and load generators both call this
/// at startup: every connection is a descriptor, and the conservative
/// default soft limit (often 1024) is below what a 512-connection benchmark
/// plus listener/epoll/eventfd descriptors needs.
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    let prev = lim.rlim_cur;
    if lim.rlim_cur < lim.rlim_max {
        lim.rlim_cur = lim.rlim_max;
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    }
    Ok((prev, lim.rlim_cur))
}

/// Shrinks (or grows) a socket's kernel receive buffer.  The dribble tests
/// use a tiny receive buffer to force the server through many short
/// `writev` passes and `EPOLLOUT` re-arms.
pub fn set_rcvbuf<F: AsRawFd>(sock: &F, bytes: usize) -> io::Result<()> {
    let v = bytes as i32;
    cvt(unsafe {
        setsockopt(
            sock.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            v.to_ne_bytes().as_ptr(),
            4,
        )
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_reports_readability_and_wakefd_coalesces() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::zeroed(); 8];
        // Nothing rung yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        wake.wake();
        wake.wake();
        wake.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1, "coalesced wakes are one event");
        assert_eq!({ events[0].data }, 42);
        assert_ne!({ events[0].events } & EPOLLIN, 0);

        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drain resets");
    }

    #[test]
    fn epoll_interest_modification_tracks_socket_state() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 8];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no bytes, no event");

        a.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!({ events[0].events } & EPOLLIN, 0);

        // Level-triggered: unread bytes keep the fd ready.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);

        // Add EPOLLOUT: an idle socket is immediately writable.
        ep.modify(b.as_raw_fd(), EPOLLIN | EPOLLOUT, 7).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!({ events[0].events } & EPOLLOUT, 0);

        // Read the bytes and drop write interest: quiet again.
        let mut buf = [0u8; 16];
        let mut r = &b;
        let got = r.read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");
        ep.modify(b.as_raw_fd(), EPOLLIN, 7).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ep.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn nofile_limit_raise_is_idempotent() {
        let (_, new_soft) = raise_nofile_limit().unwrap();
        let (prev, again) = raise_nofile_limit().unwrap();
        assert_eq!(prev, new_soft, "second raise starts at the lifted limit");
        assert_eq!(again, new_soft, "raise is idempotent");
    }
}
