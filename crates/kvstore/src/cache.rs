//! `TxCache` — a fixed-capacity cache table built by *composing* two NBTC
//! structures in one transaction per operation.
//!
//! This is the paper's pitch turned into a product feature: a cache needs a
//! lookup structure (what is cached?) and a recency structure (what gets
//! evicted?), and a nonblocking cache is only correct if the two move
//! together.  `TxCache` composes a [`MichaelHashMap`] (the entries), a
//! [`MsQueue`] (the admission order), and a second hash map of reference
//! bits into single Medley transactions:
//!
//! * a **hit** is `map.get` *plus* its recency record (setting the CLOCK
//!   reference bit) — atomically, so an eviction scan never observes a
//!   half-recorded hit;
//! * an **insert** is `map.put` *plus* admission-queue enqueue *plus*
//!   however many evictions bring the cache back under capacity — one
//!   transaction, so a committed state never exceeds `capacity` and an
//!   evicted entry can never be resurrected by a racing hit (the hit and
//!   the eviction conflict on the entry's map node and one of them aborts
//!   and retries).
//!
//! The eviction policy is **second chance** (CLOCK, an LRU approximation):
//! candidates leave the admission queue in FIFO order, but a candidate
//! whose reference bit is set gets the bit cleared and is re-queued instead
//! of evicted.  Entries removed through [`TxCache::remove`] leave a stale
//! key in the queue; the eviction scan discards stale keys when it meets
//! them, so removal stays O(1).
//!
//! Memory safety of evictions rides on the underlying structures' NBTC
//! reclamation (`tretire` on the committing transaction's epoch): the map
//! node an eviction unlinks is retired, not freed, so a concurrent reader
//! that lost the race still reads a live node and then fails validation —
//! no leak, no double-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use medley::{CasWord, Ctx};
use nbds::{MichaelHashMap, MsQueue};
use pmem::Value;

/// How many referenced (second-chance) candidates one eviction pass may
/// recycle before it evicts the next candidate regardless of its reference
/// bit.  Bounds the queue churn — and therefore the descriptor footprint —
/// of a single insert: under a pathologically all-hot queue, CLOCK degrades
/// to FIFO instead of growing the transaction without bound.
const SECOND_CHANCE_SCAN: usize = 8;

/// Hit / miss / eviction tallies for one cache shard.
///
/// Bumped from post-commit cleanup closures, so an aborted attempt counts
/// nothing and the tallies describe committed operations only.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCounters {
    /// `(hits, misses, evictions)` snapshot (relaxed loads; the counters
    /// are monotonic).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// A fixed-capacity transactional second-chance cache (see the module
/// docs).  All operations are generic over [`Ctx`], so a cache op composes
/// into larger transactions (`MGET`/`BATCH`) exactly like a plain table op
/// — but unlike plain tables, a cache op is only *correct* under a
/// transactional context, because each op spans several structures.
pub struct TxCache {
    /// The cached entries.
    map: MichaelHashMap<Value>,
    /// Admission order (FIFO); may hold stale keys for entries removed out
    /// of band, discarded by the eviction scan.
    queue: MsQueue<u64>,
    /// Presence = referenced since last (re)queued: the CLOCK bit.
    touched: MichaelHashMap<u64>,
    /// Live-entry count as a transactional word.  Admission increments it
    /// and eviction decrements it *inside the same transaction* as the map
    /// change, so `occupancy <= capacity` holds in every committed state —
    /// not merely eventually.
    occupancy: CasWord,
    capacity: u64,
    counters: Arc<CacheCounters>,
}

impl TxCache {
    /// A cache over `buckets` hash buckets holding at most `capacity` live
    /// entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (enforced earlier, with a typed error, by
    /// `StoreConfig` validation).
    pub fn new(buckets: usize, capacity: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        Self {
            map: MichaelHashMap::with_buckets(buckets),
            queue: MsQueue::new(),
            touched: MichaelHashMap::with_buckets(buckets),
            occupancy: CasWord::new(0),
            capacity,
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// The configured live-entry bound.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// This shard's hit/miss/eviction tallies.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Committed live-entry count (spins past in-flight descriptors).
    pub fn occupancy(&self) -> u64 {
        self.occupancy.load_value_spin()
    }

    /// Bucket count of the entry map (for the `STATS` table section).
    pub fn bucket_count(&self) -> usize {
        self.map.bucket_count()
    }

    /// Queues a +1/-1 counter bump to run if (and only if) the operation
    /// commits.
    fn tally<C: Ctx>(
        cx: &mut C,
        counters: &Arc<CacheCounters>,
        pick: fn(&CacheCounters) -> &AtomicU64,
    ) {
        let c = Arc::clone(counters);
        cx.add_cleanup(move |_| {
            pick(&c).fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Adds `delta` to the occupancy word inside the current transaction
    /// and returns the new value.  The CAS loop mirrors the structures'
    /// own helping discipline: a failed speculative CAS means a concurrent
    /// committed change, so re-read and retry (in a transaction, the retry
    /// hits the freshly buffered value and succeeds deterministically).
    fn bump_occupancy<C: Ctx>(&self, cx: &mut C, delta: i64) -> u64 {
        loop {
            let cur = cx.nbtc_load(&self.occupancy);
            let next = cur.wrapping_add_signed(delta);
            if cx.nbtc_cas(&self.occupancy, cur, next, true, true) {
                return next;
            }
        }
    }

    /// Sets the CLOCK reference bit for `key` — but only if unset, so the
    /// hot-key common case stays a pure (descriptor-free, read-only
    /// committable) probe.
    fn touch<C: Ctx>(&self, cx: &mut C, key: u64) {
        if !self.touched.contains(cx, key) {
            self.touched.put(cx, key, 1);
        }
    }

    /// Lookup + recency record, atomically.  A hit sets the reference bit;
    /// both outcomes tally post-commit.
    pub fn get<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<Value> {
        let val = self.map.get(cx, key);
        if val.is_some() {
            self.touch(cx, key);
            Self::tally(cx, &self.counters, |c| &c.hits);
        } else {
            Self::tally(cx, &self.counters, |c| &c.misses);
        }
        val
    }

    /// Membership probe.  Deliberately policy-neutral: no reference bit,
    /// no hit/miss tally — `CONTAINS` asks about the cache, it doesn't use
    /// it.
    pub fn contains<C: Ctx>(&self, cx: &mut C, key: u64) -> bool {
        self.map.contains(cx, key)
    }

    /// Insert-or-replace + admission + eviction, atomically.
    ///
    /// A replacement counts as a reference (the entry is evidently hot); a
    /// fresh admission enqueues the key unreferenced and then evicts until
    /// the cache is back under capacity.  Returns the previous value.
    pub fn put<C: Ctx>(&self, cx: &mut C, key: u64, val: Value) -> Option<Value> {
        let prev = self.map.put(cx, key, val);
        if prev.is_some() {
            self.touch(cx, key);
            return prev;
        }
        // Fresh admission: clear any reference bit left over from a prior
        // life of this key, enqueue, and pay for the slot.
        self.touched.remove(cx, key);
        self.queue.enqueue(cx, key);
        let mut occupancy = self.bump_occupancy(cx, 1);
        while occupancy > self.capacity {
            if !self.evict_one(cx) {
                break;
            }
            occupancy -= 1;
        }
        prev
    }

    /// Removal, with its occupancy decrement and reference-bit clear in the
    /// same transaction.  The admission-queue entry goes stale and is
    /// discarded by a later eviction scan.
    pub fn remove<C: Ctx>(&self, cx: &mut C, key: u64) -> Option<Value> {
        let prev = self.map.remove(cx, key);
        if prev.is_some() {
            self.bump_occupancy(cx, -1);
            self.touched.remove(cx, key);
        }
        prev
    }

    /// Evicts one live entry chosen by the second-chance scan; returns
    /// `false` only if the admission queue ran dry (no live entries).
    fn evict_one<C: Ctx>(&self, cx: &mut C) -> bool {
        let mut chances = 0usize;
        loop {
            let Some(candidate) = self.queue.dequeue(cx) else {
                return false;
            };
            let referenced = self.touched.remove(cx, candidate).is_some();
            if !self.map.contains(cx, candidate) {
                // Stale queue entry: the key was removed out of band and
                // its slot already given back.  Discard and keep scanning.
                continue;
            }
            if referenced && chances < SECOND_CHANCE_SCAN {
                chances += 1;
                self.queue.enqueue(cx, candidate);
                continue;
            }
            self.map.remove(cx, candidate);
            self.bump_occupancy(cx, -1);
            Self::tally(cx, &self.counters, |c| &c.evictions);
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medley::TxManager;
    use std::sync::atomic::AtomicBool;

    fn word(v: u64) -> Value {
        Value::U64(v)
    }

    #[test]
    fn capacity_is_an_invariant_not_a_goal() {
        let mgr = TxManager::with_max_threads(4);
        let mut h = mgr.register();
        let cache = TxCache::new(64, 8);
        // Admit far more keys than fit: after every single committed put,
        // occupancy must already be back under capacity.
        for k in 0..100 {
            h.run(|t| {
                cache.put(t, k, word(k * 10));
                Ok(())
            })
            .unwrap();
            assert!(cache.occupancy() <= 8, "over capacity after put {k}");
        }
        let (_, _, evictions) = cache.counters().snapshot();
        assert_eq!(evictions, 100 - 8);
    }

    #[test]
    fn second_chance_protects_referenced_entries() {
        let mgr = TxManager::with_max_threads(4);
        let mut h = mgr.register();
        let cache = TxCache::new(64, 4);
        for k in 0..4 {
            h.run(|t| {
                cache.put(t, k, word(k));
                Ok(())
            })
            .unwrap();
        }
        // Reference key 0: it is the oldest, but the hit must save it from
        // the next eviction, which falls on key 1 instead.
        let hit = h.run(|t| Ok(cache.get(t, 0))).unwrap();
        assert_eq!(hit, Some(word(0)));
        h.run(|t| {
            cache.put(t, 99, word(99));
            Ok(())
        })
        .unwrap();
        let mut present = Vec::new();
        for k in [0, 1, 2, 3, 99] {
            if h.run(|t| Ok(cache.contains(t, k))).unwrap() {
                present.push(k);
            }
        }
        assert_eq!(present, vec![0, 2, 3, 99]);
        let (hits, misses, _) = cache.counters().snapshot();
        assert_eq!((hits, misses), (1, 0));
    }

    #[test]
    fn remove_gives_the_slot_back_and_queue_entry_goes_stale() {
        let mgr = TxManager::with_max_threads(4);
        let mut h = mgr.register();
        let cache = TxCache::new(64, 2);
        for k in 0..2 {
            h.run(|t| {
                cache.put(t, k, word(k));
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(h.run(|t| Ok(cache.remove(t, 0))).unwrap(), Some(word(0)));
        assert_eq!(cache.occupancy(), 1);
        // The freed slot admits a new key without evicting the survivor —
        // the stale queue entry for key 0 must be skipped, not "evicted".
        h.run(|t| {
            cache.put(t, 7, word(7));
            Ok(())
        })
        .unwrap();
        assert!(h.run(|t| Ok(cache.contains(t, 1))).unwrap());
        assert!(h.run(|t| Ok(cache.contains(t, 7))).unwrap());
        let (_, _, evictions) = cache.counters().snapshot();
        assert_eq!(evictions, 0);
    }

    #[test]
    fn counters_only_count_committed_operations() {
        let mgr = TxManager::with_max_threads(4);
        let mut h = mgr.register();
        let cache = TxCache::new(64, 8);
        h.run(|t| {
            cache.put(t, 1, word(1));
            Ok(())
        })
        .unwrap();
        // A hit inside an explicitly aborted transaction must not tally.
        let _: medley::TxResult<()> = h.run(|t| {
            let _ = cache.get(t, 1);
            Err(t.abort(medley::AbortReason::Explicit))
        });
        let (hits, misses, _) = cache.counters().snapshot();
        assert_eq!((hits, misses), (0, 0));
    }

    #[test]
    fn concurrent_hits_and_inserts_never_overflow_or_lose_the_invariant() {
        const CAP: u64 = 32;
        let mgr = TxManager::with_max_threads(8);
        let cache = Arc::new(TxCache::new(128, CAP));
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for tid in 0..6u64 {
            let mgr = mgr.clone();
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut h = mgr.register();
                let mut x = tid * 0x9E37 + 1;
                for i in 0..4_000u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 200;
                    if i % 3 == 0 {
                        let _ = h.run(|t| Ok(cache.get(t, k)));
                    } else if i % 7 == 0 {
                        let _ = h.run(|t| Ok(cache.remove(t, k)));
                    } else {
                        let _ = h.run(|t| {
                            cache.put(t, k, Value::U64(k));
                            Ok(())
                        });
                    }
                }
                stop.store(true, Ordering::Relaxed);
            }));
        }
        // Sample the invariant while the mutators run: every committed
        // state must hold occupancy <= capacity.
        while !stop.load(Ordering::Relaxed) {
            assert!(cache.occupancy() <= CAP, "capacity invariant violated");
            std::thread::yield_now();
        }
        for t in threads {
            t.join().unwrap();
        }
        assert!(cache.occupancy() <= CAP);
        // The ground truth agrees with the transactional occupancy word.
        let live = cache.map.snapshot().len() as u64;
        assert_eq!(live, cache.occupancy());
        let (_, _, evictions) = cache.counters().snapshot();
        assert!(evictions > 0, "stress must actually exercise eviction");
    }
}
