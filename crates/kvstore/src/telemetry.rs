//! Server-side telemetry: per-opcode latency histograms, abort-reason and
//! retry breakdowns, event-loop phase accounting, and slow-request tracing.
//!
//! The hot path is allocation-free: each worker owns one
//! [`obs::WorkerMetrics`] block of relaxed atomics inside a shared
//! [`obs::MetricsRegistry`], so recording a request is a handful of
//! `fetch_add`s with no locks and no cross-worker cache-line contention.
//! Aggregation happens only when somebody asks — the `METRICS` wire command
//! and the Prometheus exposition endpoint both fold the per-worker blocks
//! into one [`MetricsReply`]/text page on the *reader's* thread.
//!
//! Three consumers share this module's state:
//!
//! * the `METRICS` wire command ([`Telemetry::metrics_reply`]) — raw
//!   64-bucket histograms per opcode, so a client reconstructs exactly the
//!   server's [`obs::LatencyHistogram`] and can compare its own observed
//!   latencies against the server's service times;
//! * the `TRACE` wire command ([`Telemetry::trace_reply`]) — the newest
//!   slow-request records from every worker's bounded ring;
//! * the optional `--metrics-addr` HTTP listener (`MetricsExporter`) —
//!   Prometheus text exposition rendered by [`obs::prom`], one blocking
//!   thread, plain `std` TCP, no dependencies.

use crate::proto::{self, MetricsReply, OpMetrics, TraceReply};
use crate::store::ErrCode;
use obs::{MetricsRegistry, RegistrySpec, TraceRing, WorkerMetrics};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The opcodes the registry tracks, in registry-index order (admin opcodes
/// are deliberately absent: `STATS`/`METRICS`/`TRACE` must not perturb the
/// series they report).
pub(crate) const TRACKED_OPS: [u8; 16] = [
    proto::OP_GET,
    proto::OP_PUT,
    proto::OP_DEL,
    proto::OP_CAS,
    proto::OP_CONTAINS,
    proto::OP_GETB,
    proto::OP_PUTB,
    proto::OP_DELB,
    proto::OP_CASB,
    proto::OP_MGET,
    proto::OP_MSET,
    proto::OP_TRANSFER,
    proto::OP_BATCH,
    proto::OP_MGETB,
    proto::OP_MSETB,
    proto::OP_SCAN,
];

/// Exposition label per tracked opcode, parallel to `TRACKED_OPS`.
pub const OP_LABELS: &[&str] = &[
    "get", "put", "del", "cas", "contains", "get_b", "put_b", "del_b", "cas_b", "mget", "mset",
    "transfer", "batch", "mget_b", "mset_b", "scan",
];

/// Abort/error-reason labels, indexed by [`ErrCode`] discriminant order
/// (the order `OpMetrics::aborts` uses on the wire).
pub const ERROR_LABELS: &[&str] = &[
    "retry",
    "capacity",
    "not_found",
    "insufficient",
    "overload",
    "malformed",
];

/// Event-loop phase labels, the index order of
/// [`MetricsReply::worker_phases`] rows: kernel wait, frame decode,
/// command execution (including response encode), and socket flush.
pub const PHASE_LABELS: &[&str] = &["epoll_wait", "decode", "execute", "flush"];

/// Phase indices, named so the server's accounting reads as prose.
pub(crate) const PHASE_EPOLL_WAIT: usize = 0;
pub(crate) const PHASE_DECODE: usize = 1;
pub(crate) const PHASE_EXECUTE: usize = 2;
pub(crate) const PHASE_FLUSH: usize = 3;

/// The registry shape every kvstore server uses.
const SPEC: RegistrySpec = RegistrySpec {
    ops: OP_LABELS,
    errors: ERROR_LABELS,
    phases: PHASE_LABELS,
};

/// Metric family prefix on the exposition page (`kvstore_op_latency_ns_...`).
const PROM_PREFIX: &str = "kvstore";

/// Registry index of a tracked opcode (`None` for admin/unknown opcodes).
#[inline]
pub(crate) fn op_index(opcode: u8) -> Option<usize> {
    TRACKED_OPS.iter().position(|&op| op == opcode)
}

/// Error-label index of an [`ErrCode`] (the `aborts` vector position).
#[inline]
pub(crate) fn error_index(e: ErrCode) -> usize {
    match e {
        ErrCode::Retry => 0,
        ErrCode::Capacity => 1,
        ErrCode::NotFound => 2,
        ErrCode::Insufficient => 3,
        ErrCode::Overload => 4,
        ErrCode::Malformed => 5,
    }
}

/// Telemetry construction parameters (part of
/// [`crate::ServerConfig`]).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Collect per-request metrics at all.  Off, the per-request path adds
    /// nothing (no clock reads, no atomics) and `METRICS`/`TRACE` answer
    /// empty — the A/B configuration the overhead benchmark compares.
    pub enabled: bool,
    /// Requests whose service time reaches this land in the slow-request
    /// ring.  `Duration::ZERO` traces every tracked request (the
    /// deterministic mode tests use).
    pub slow_threshold: Duration,
    /// Capacity of each worker's slow-request ring (newest kept, evictions
    /// counted).
    pub trace_capacity: usize,
    /// Optional `host:port` to serve Prometheus text exposition on (its own
    /// thread; `None` disables the listener).
    pub metrics_addr: Option<String>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            slow_threshold: Duration::from_millis(1),
            trace_capacity: 256,
            metrics_addr: None,
        }
    }
}

/// Shared telemetry state: the metrics registry, the per-worker slow-request
/// rings, and the server's start instant (uptime).
pub struct Telemetry {
    registry: MetricsRegistry,
    traces: Vec<TraceRing>,
    slow_ns: u64,
    started: Instant,
}

impl Telemetry {
    pub(crate) fn new(cfg: &TelemetryConfig, workers: usize) -> Self {
        Self {
            registry: MetricsRegistry::new(SPEC, workers),
            traces: (0..workers)
                .map(|_| TraceRing::new(cfg.trace_capacity))
                .collect(),
            slow_ns: cfg.slow_threshold.as_nanos().min(u64::MAX as u128) as u64,
            started: Instant::now(),
        }
    }

    /// The shared metrics registry (per-worker write blocks + snapshots).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Worker `slot`'s metrics block.
    #[inline]
    pub(crate) fn worker(&self, slot: usize) -> &WorkerMetrics {
        self.registry.worker(slot)
    }

    /// Worker `slot`'s slow-request ring.
    #[inline]
    pub(crate) fn trace(&self, slot: usize) -> &TraceRing {
        &self.traces[slot]
    }

    /// Service-time threshold for slow-request tracing, in nanoseconds.
    #[inline]
    pub(crate) fn slow_ns(&self) -> u64 {
        self.slow_ns
    }

    /// Whole seconds since the server started.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Folds the per-worker blocks into the `METRICS` wire reply.  Inactive
    /// opcodes (no samples, no retries, no aborts) are omitted.
    pub fn metrics_reply(&self) -> MetricsReply {
        let snap = self.registry.snapshot();
        MetricsReply {
            uptime_secs: self.uptime_secs(),
            ops: snap
                .ops
                .iter()
                .filter(|o| o.is_active())
                .map(|o| OpMetrics {
                    opcode: TRACKED_OPS[o.op],
                    hist: o.hist.clone(),
                    retries: o.retries,
                    aborts: o.errors.clone(),
                })
                .collect(),
            worker_phases: snap.phase_ns,
        }
    }

    /// Concatenates every worker's slow-request ring (worker order, oldest
    /// first within a worker) into the `TRACE` wire reply.
    pub fn trace_reply(&self) -> TraceReply {
        let mut reply = TraceReply::default();
        for ring in &self.traces {
            let (records, evicted) = ring.snapshot();
            reply.records.extend(records);
            reply.evicted += evicted;
        }
        reply
    }

    /// Renders the Prometheus text exposition page.
    pub fn render_prometheus(&self) -> String {
        obs::prom::render(
            &SPEC,
            &self.registry.snapshot(),
            self.started.elapsed().as_secs_f64(),
            PROM_PREFIX,
        )
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("workers", &self.registry.n_workers())
            .field("slow_ns", &self.slow_ns)
            .finish()
    }
}

/// How often the exporter's accept loop rechecks the stop flag while idle.
const EXPORTER_POLL: Duration = Duration::from_millis(25);

/// Per-connection socket timeout: a scraper that stalls mid-request cannot
/// wedge the exporter thread.
const EXPORTER_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The Prometheus exposition listener: one thread, one nonblocking
/// `TcpListener`, serving every HTTP request with the current exposition
/// page and closing (`Connection: close` semantics — scrapers reconnect per
/// scrape anyway).
pub(crate) struct MetricsExporter {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsExporter {
    /// Binds `addr` and spawns the serving thread.
    pub(crate) fn start(addr: &str, tel: Arc<Telemetry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("kv-metrics".to_string())
            .spawn(move || exporter_loop(listener, tel, thread_stop))?;
        Ok(Self {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub(crate) fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn exporter_loop(listener: TcpListener, tel: Arc<Telemetry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare (seconds apart) and the
                // page renders in microseconds, so a second thread would
                // only add moving parts.
                let _ = serve_scrape(stream, &tel);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(EXPORTER_POLL);
            }
            Err(_) => std::thread::sleep(EXPORTER_POLL),
        }
    }
}

/// Reads (and discards) the request head, then writes the exposition page.
/// Any HTTP request gets the page — there is exactly one resource.
fn serve_scrape(mut stream: std::net::TcpStream, tel: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(EXPORTER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(EXPORTER_IO_TIMEOUT))?;
    let mut head = [0u8; 4096];
    let mut seen = 0usize;
    while seen < head.len() {
        let n = stream.read(&mut head[seen..])?;
        if n == 0 {
            break;
        }
        seen += n;
        if head[..seen].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let body = tel.render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::TraceRecord;

    #[test]
    fn op_and_error_indices_are_consistent_with_labels() {
        assert_eq!(TRACKED_OPS.len(), OP_LABELS.len());
        for (i, &op) in TRACKED_OPS.iter().enumerate() {
            assert_eq!(op_index(op), Some(i));
        }
        // Admin opcodes must not be tracked: their handling would otherwise
        // pollute the very series they report.
        for admin in [
            proto::OP_STATS,
            proto::OP_SYNC,
            proto::OP_METRICS,
            proto::OP_TRACE,
        ] {
            assert_eq!(op_index(admin), None);
        }
        assert_eq!(ERROR_LABELS.len(), 6);
        for (e, want) in [
            (ErrCode::Retry, "retry"),
            (ErrCode::Capacity, "capacity"),
            (ErrCode::NotFound, "not_found"),
            (ErrCode::Insufficient, "insufficient"),
            (ErrCode::Overload, "overload"),
            (ErrCode::Malformed, "malformed"),
        ] {
            assert_eq!(ERROR_LABELS[error_index(e)], want);
        }
    }

    #[test]
    fn metrics_reply_folds_workers_and_omits_idle_ops() {
        let tel = Telemetry::new(&TelemetryConfig::default(), 2);
        let get = op_index(proto::OP_GET).unwrap();
        let transfer = op_index(proto::OP_TRANSFER).unwrap();
        tel.worker(0).record_op(get, 1_000, 0);
        tel.worker(1).record_op(get, 3_000, 0);
        tel.worker(1).record_op(transfer, 50_000, 2);
        tel.worker(1)
            .record_error(transfer, error_index(ErrCode::Retry));
        tel.worker(0).add_phase_ns(PHASE_EXECUTE, 4_000);

        let reply = tel.metrics_reply();
        assert_eq!(reply.ops.len(), 2, "idle opcodes are omitted");
        let g = reply
            .ops
            .iter()
            .find(|o| o.opcode == proto::OP_GET)
            .unwrap();
        assert_eq!(g.hist.total(), 2, "workers fold into one histogram");
        let t = reply
            .ops
            .iter()
            .find(|o| o.opcode == proto::OP_TRANSFER)
            .unwrap();
        assert_eq!(t.retries, 2);
        assert_eq!(t.aborts[error_index(ErrCode::Retry)], 1);
        assert_eq!(reply.worker_phases.len(), 2);
        assert_eq!(reply.worker_phases[0][PHASE_EXECUTE], 4_000);
    }

    #[test]
    fn trace_reply_concatenates_worker_rings() {
        let tel = Telemetry::new(
            &TelemetryConfig {
                trace_capacity: 2,
                ..Default::default()
            },
            2,
        );
        for i in 0..3u64 {
            tel.trace(0).push(TraceRecord {
                opcode: proto::OP_PUT,
                status: 0,
                req_id: i,
                queue_ns: 0,
                exec_ns: 10,
                retries: 0,
            });
        }
        tel.trace(1).push(TraceRecord {
            opcode: proto::OP_GET,
            status: 0,
            req_id: 100,
            queue_ns: 0,
            exec_ns: 10,
            retries: 0,
        });
        let reply = tel.trace_reply();
        assert_eq!(reply.records.len(), 3, "2 kept on worker 0 + 1 on worker 1");
        assert_eq!(reply.evicted, 1);
    }

    #[test]
    fn exporter_serves_the_exposition_page() {
        let tel = Arc::new(Telemetry::new(&TelemetryConfig::default(), 1));
        tel.worker(0)
            .record_op(op_index(proto::OP_GET).unwrap(), 5_000, 0);
        let exporter = MetricsExporter::start("127.0.0.1:0", Arc::clone(&tel)).unwrap();
        let mut stream = std::net::TcpStream::connect(exporter.local_addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut page = String::new();
        stream.read_to_string(&mut page).unwrap();
        assert!(page.starts_with("HTTP/1.1 200 OK"));
        assert!(page.contains("kvstore_uptime_seconds"));
        assert!(page.contains("kvstore_op_latency_ns_bucket{op=\"get\""));
        exporter.shutdown();
    }
}
