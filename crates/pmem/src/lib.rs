//! # pmem — nbMontage-style periodic persistence substrate
//!
//! This crate reproduces the parts of **nbMontage** (Cai et al., DISC'21)
//! that txMontage builds on:
//!
//! * an **epoch clock** (the `TxManager`'s epoch word) that divides time into
//!   coarse intervals;
//! * a **payload store** holding the semantically significant data of each
//!   structure (key/value pairs), each record tagged with the epoch of the
//!   operation that created or retired it;
//! * **periodic persistence**: payloads are written back in batches at epoch
//!   boundaries rather than eagerly, and post-crash recovery restores the
//!   state as of the end of epoch `e − 2` — the *buffered* durable
//!   linearizability of Izraelevitz et al., extended to transactions
//!   (buffered durable strict serializability) by txMontage;
//! * a **simulated NVM** device that counts (and optionally charges latency
//!   for) cache-line write-backs and fences, standing in for the Optane
//!   hardware of the paper per DESIGN.md's substitution table.
//!
//! The `txmontage` crate combines this domain with the Medley maps of `nbds`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod domain;
pub mod nvm;

pub use domain::{DomainStats, EpochAdvancer, PayloadId, PersistenceDomain};
pub use nvm::{NvmCostModel, NvmStats, SimNvm};
