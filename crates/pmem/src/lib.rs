//! # pmem — nbMontage-style periodic persistence substrate
//!
//! This crate reproduces the parts of **nbMontage** (Cai et al., DISC'21)
//! that txMontage builds on:
//!
//! * an **epoch clock** (the `TxManager`'s epoch word) that divides time into
//!   coarse intervals;
//! * a **payload store** holding the semantically significant data of each
//!   structure (key/value pairs), each record tagged with the epoch of the
//!   operation that created or retired it.  The store is sharded into
//!   **per-thread arenas** (one per `TxManager` thread slot) with lock-free
//!   allocation and retirement, and each arena keeps **epoch-indexed dirty
//!   lists** so the periodic write-back touches only the records that
//!   actually changed in the epochs crossing the durability horizon;
//! * **periodic persistence**: payloads are written back in batches at epoch
//!   boundaries rather than eagerly, and post-crash recovery restores the
//!   state as of the end of epoch `e − 2` — the *buffered* durable
//!   linearizability of Izraelevitz et al., extended to transactions
//!   (buffered durable strict serializability) by txMontage.  Buffered
//!   durability deliberately trades a bounded recent window for throughput:
//!   a crash in epoch `e` loses the operations of epochs `e − 1` and `e`
//!   (anything newer than the last completed write-back), but never an
//!   operation that a [`PersistenceDomain::sync`] call covered, and recovery
//!   is always a consistent cut — no half-applied transaction is ever
//!   restored;
//! * a **simulated NVM** device that counts (and optionally charges latency
//!   for) cache-line write-backs and fences, standing in for the Optane
//!   hardware of the paper per DESIGN.md's substitution table.
//!
//! The `txmontage` crate combines this domain with the Medley maps of `nbds`.
//! See [`domain`] for the slot lifecycle diagram and the concurrency
//! argument of the arena store.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod domain;
pub mod nvm;
pub mod value;

pub use domain::{DomainBackend, DomainStats, EpochAdvancer, PayloadId, PersistenceDomain};
pub use nvm::{NvmCostModel, NvmSnapshot, NvmStats, SimNvm};
pub use value::{Value, MAX_VALUE_BYTES};
