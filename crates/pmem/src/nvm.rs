//! Simulated non-volatile memory.
//!
//! The paper evaluates txMontage on Intel Optane DC persistent-memory DIMMs.
//! This environment has no NVM, so — per the substitution rule in DESIGN.md —
//! we model the *costs* that matter for the persistent experiments:
//!
//! * `clwb`-style cache-line write-backs and `sfence`-style ordering fences
//!   are counted and (optionally) charged a configurable latency, so that a
//!   system that flushes eagerly on every commit (persistent OneFile) pays
//!   proportionally more than one that batches flushes at epoch boundaries
//!   (txMontage);
//! * the "NVM contents" are an ordinary heap allocation whose durable state
//!   is defined by the epoch protocol in [`crate::domain`].
//!
//! The absolute numbers are not meaningful; the *relative shape* (orders of
//! magnitude between eager and periodic persistence) is what the model
//! reproduces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Latency model for simulated NVM write-backs and fences.
#[derive(Debug, Clone, Copy)]
pub struct NvmCostModel {
    /// Cost charged per cache-line write-back (`clwb`), in nanoseconds.
    pub flush_ns: u64,
    /// Cost charged per ordering fence (`sfence`), in nanoseconds.
    pub fence_ns: u64,
}

impl NvmCostModel {
    /// Approximates Optane DC write-back costs (per published measurements of
    /// ~100-300 ns per flushed line on the paper's hardware generation).
    pub const OPTANE_LIKE: NvmCostModel = NvmCostModel {
        flush_ns: 200,
        fence_ns: 60,
    };

    /// Free flushes: useful for functional tests where wall-clock time does
    /// not matter.
    pub const ZERO: NvmCostModel = NvmCostModel {
        flush_ns: 0,
        fence_ns: 0,
    };
}

impl Default for NvmCostModel {
    fn default() -> Self {
        Self::OPTANE_LIKE
    }
}

/// Counters describing how much persistence work a system performed.
#[derive(Debug, Default)]
pub struct NvmStats {
    flushes: AtomicU64,
    fences: AtomicU64,
}

impl NvmStats {
    /// `(cache-line write-backs, fences)` issued so far.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.flushes.load(Ordering::Relaxed),
            self.fences.load(Ordering::Relaxed),
        )
    }

    /// A structured point-in-time copy, subtractable for per-run deltas
    /// (used by the `durable-*` throughput series).
    pub fn snapshot_counts(&self) -> NvmSnapshot {
        let (flushes, fences) = self.snapshot();
        NvmSnapshot { flushes, fences }
    }
}

/// A point-in-time copy of an [`NvmStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NvmSnapshot {
    /// Cache-line write-backs issued so far.
    pub flushes: u64,
    /// Ordering fences issued so far.
    pub fences: u64,
}

impl NvmSnapshot {
    /// The persistence work performed between `earlier` and `self`.
    pub fn delta_since(self, earlier: NvmSnapshot) -> NvmSnapshot {
        NvmSnapshot {
            flushes: self.flushes - earlier.flushes,
            fences: self.fences - earlier.fences,
        }
    }
}

/// A simulated NVM device: charges latencies and counts operations.
#[derive(Debug, Default)]
pub struct SimNvm {
    cost: NvmCostModel,
    stats: NvmStats,
}

impl SimNvm {
    /// Creates a device with the given cost model.
    pub fn new(cost: NvmCostModel) -> Self {
        Self {
            cost,
            stats: NvmStats::default(),
        }
    }

    /// Simulates writing back one cache line (e.g. one payload record).
    pub fn flush_line(&self) {
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        spin_wait_ns(self.cost.flush_ns);
    }

    /// Simulates writing back `lines` cache lines.
    pub fn flush_lines(&self, lines: u64) {
        self.stats.flushes.fetch_add(lines, Ordering::Relaxed);
        spin_wait_ns(self.cost.flush_ns.saturating_mul(lines));
    }

    /// Simulates an ordering fence.
    pub fn fence(&self) {
        self.stats.fences.fetch_add(1, Ordering::Relaxed);
        spin_wait_ns(self.cost.fence_ns);
    }

    /// Persistence-work counters.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> NvmCostModel {
        self.cost
    }
}

/// Busy-waits for approximately `ns` nanoseconds (short, sub-microsecond
/// waits cannot be delegated to the OS scheduler).
fn spin_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_operations() {
        let nvm = SimNvm::new(NvmCostModel::ZERO);
        nvm.flush_line();
        nvm.flush_lines(3);
        nvm.fence();
        assert_eq!(nvm.stats().snapshot(), (4, 1));
    }

    #[test]
    fn nonzero_cost_model_takes_time() {
        let nvm = SimNvm::new(NvmCostModel {
            flush_ns: 200_000, // 0.2 ms so the test is robust to timer noise
            fence_ns: 0,
        });
        let t0 = Instant::now();
        nvm.flush_line();
        assert!(t0.elapsed().as_nanos() >= 150_000);
    }

    #[test]
    fn default_is_optane_like() {
        let m = NvmCostModel::default();
        assert_eq!(m.flush_ns, NvmCostModel::OPTANE_LIKE.flush_ns);
    }
}
