//! The variable-length payload value type shared by the payload store and
//! the service layers above it.
//!
//! Historically every payload was a single `u64`; the KV service grew
//! length-prefixed byte values end to end, and this enum is the in-memory
//! representation that flows from the wire protocol through the transient
//! indices (`nbds` maps are generic over their value type) down to the
//! durable payload arenas:
//!
//! * [`Value::U64`] — the inline "word" fast path.  Stored directly in a
//!   64-byte payload slot, cloned by copy, compared by value.
//! * [`Value::Bytes`] — a heap value behind an `Arc`, so clones along the
//!   transient index / transaction-footprint paths are refcount bumps, not
//!   byte copies.
//!
//! # Canonical form
//!
//! A value of **exactly 8 bytes is always represented as `U64`** (little
//! endian).  [`Value::from_bytes`] enforces this, and every decoder in the
//! stack builds values through it.  The invariant is what makes the legacy
//! fixed-width wire ops (`GET`/`PUT`/...) and the blob ops (`GETB`/`PUTB`/
//! ...) interoperate: `PUT k 5` and `PUTB k <5u64 LE>` store the same value,
//! and equality (e.g. `CASB`) never depends on which op family wrote it.

use std::sync::Arc;

/// Maximum byte length of a single payload value (256 KiB).
///
/// Bounds the overflow-chain walk in the payload store and keeps any single
/// value well under the wire protocol's 1 MiB frame cap.
pub const MAX_VALUE_BYTES: usize = 256 * 1024;

/// A payload value: an inline word or a heap byte string.
///
/// See the module docs for the canonical-form invariant (8-byte values are
/// always `U64`).  Construct byte values through [`Value::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An 8-byte word value (the historical fixed-width payload).
    U64(u64),
    /// A byte-string value of any length other than 8 (see
    /// [`Value::from_bytes`]); cheap to clone.
    Bytes(Arc<[u8]>),
}

impl Value {
    /// Builds the canonical value for `bytes`: exactly-8-byte inputs become
    /// [`Value::U64`] (little endian), everything else [`Value::Bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        if bytes.len() == 8 {
            Value::U64(u64::from_le_bytes(bytes.try_into().unwrap()))
        } else {
            Value::Bytes(Arc::from(bytes))
        }
    }

    /// The word form, if this value is one.
    #[inline]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::Bytes(_) => None,
        }
    }

    /// Byte length of the value (8 for a word).
    #[inline]
    pub fn byte_len(&self) -> usize {
        match self {
            Value::U64(_) => 8,
            Value::Bytes(b) => b.len(),
        }
    }

    /// The value as bytes (words serialize little endian, matching
    /// [`Value::from_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Value::U64(v) => v.to_le_bytes().to_vec(),
            Value::Bytes(b) => b.to_vec(),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_byte_values_canonicalize_to_words() {
        let v = Value::from_bytes(&42u64.to_le_bytes());
        assert_eq!(v, Value::U64(42));
        assert_eq!(v.byte_len(), 8);
        assert_eq!(v.to_bytes(), 42u64.to_le_bytes());
    }

    #[test]
    fn roundtrip_preserves_bytes_and_equality() {
        for len in [0usize, 1, 7, 9, 64, 65, 448, 449, 4096] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 7 + len) as u8).collect();
            let v = Value::from_bytes(&bytes);
            assert_eq!(v.byte_len(), len);
            assert_eq!(v.to_bytes(), bytes);
            assert_eq!(v, Value::from_bytes(&bytes));
        }
        assert_ne!(Value::from_bytes(b"ab"), Value::from_bytes(b"ac"));
        assert_ne!(Value::U64(1), Value::from_bytes(b"not8bytes"));
    }
}
