//! The persistence domain: payload store + epoch protocol (nbMontage-style).
//!
//! nbMontage distinguishes *payloads* (semantically significant data — for a
//! mapping, the pile of key/value pairs) from *indices* (transient structures
//! kept in DRAM and rebuilt on recovery).  Payloads are tagged with the epoch
//! of the operation that created or retired them; wall-clock time is divided
//! into epochs, payloads are written back in batches at epoch boundaries, and
//! recovery after a crash in epoch `e` restores the state as of the end of
//! epoch `e - 2`.
//!
//! [`PersistenceDomain`] implements exactly this protocol over the simulated
//! NVM of [`crate::nvm`].  The epoch clock is the `TxManager`'s epoch word,
//! so that — with `TxManager::set_epoch_validation(true)` — Medley
//! transactions validate the epoch as part of their MCNS commit and therefore
//! always linearize entirely inside one epoch: this is the one-line
//! integration that gives txMontage failure atomicity "almost for free"
//! (paper Sec. 4.4).

use crate::nvm::{NvmCostModel, SimNvm};
use medley::util::sync::Mutex;
use medley::TxManager;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A payload slot is retired but its retirement is not yet durable.
const LIVE: u64 = u64::MAX;

/// One payload record: a key/value pair plus the epochs in which it was
/// created and retired.  In real nbMontage this is a cache-line-sized block
/// in NVM; here it is a slot in the simulated-NVM slab.
#[derive(Debug, Clone, Copy)]
struct Payload {
    key: u64,
    val: u64,
    birth: u64,
    retire: u64,
}

/// Identifier of a payload record (returned by [`PersistenceDomain::alloc_payload`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadId(pub u64);

#[derive(Debug, Default)]
struct Slab {
    slots: Vec<Payload>,
    free: Vec<usize>,
}

/// Statistics of a persistence domain.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DomainStats {
    /// Payload records currently considered live.
    pub live_payloads: usize,
    /// Payload slots available for reuse.
    pub free_slots: usize,
    /// Epoch up to which payloads have been written back.
    pub persisted_epoch: u64,
    /// Current epoch.
    pub current_epoch: u64,
}

/// An nbMontage-style persistence domain bound to one [`TxManager`].
pub struct PersistenceDomain {
    mgr: Arc<TxManager>,
    nvm: SimNvm,
    slab: Mutex<Slab>,
    /// Epoch up to which all payload births/retirements have been "written
    /// back" to simulated NVM.
    persisted_epoch: AtomicU64,
}

impl std::fmt::Debug for PersistenceDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistenceDomain")
            .field("current_epoch", &self.current_epoch())
            .field(
                "persisted_epoch",
                &self.persisted_epoch.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// Exclusive upper bound of the durable epochs at clock value `epoch`:
/// epochs `0 .. durable_end(epoch)` are durable.  Recovery at epoch `e`
/// restores the state as of the *end of epoch `e - 2`*, so nothing at all is
/// durable until the clock has reached 2 (the seed's `saturating_sub`
/// arithmetic conflated "epoch 0 is durable" with "nothing is durable yet",
/// recovering fresh epoch-0 payloads before any write-back and skipping them
/// in the write-back batches).
#[inline]
fn durable_end(epoch: u64) -> u64 {
    if epoch >= 2 {
        epoch - 1
    } else {
        0
    }
}

impl PersistenceDomain {
    /// Creates a domain on `mgr` with the given NVM cost model, and turns on
    /// epoch validation for all transactions of that manager.
    pub fn new(mgr: Arc<TxManager>, cost: NvmCostModel) -> Arc<Self> {
        mgr.set_epoch_validation(true);
        Arc::new(Self {
            mgr,
            nvm: SimNvm::new(cost),
            slab: Mutex::new(Slab::default()),
            persisted_epoch: AtomicU64::new(0),
        })
    }

    /// The transaction manager whose epoch word drives this domain.
    pub fn manager(&self) -> &Arc<TxManager> {
        &self.mgr
    }

    /// The simulated NVM device (for inspecting flush/fence counts).
    pub fn nvm(&self) -> &SimNvm {
        &self.nvm
    }

    /// Current epoch.
    pub fn current_epoch(&self) -> u64 {
        self.mgr.current_epoch()
    }

    /// Allocates a payload record for `key -> val`, tagged with `epoch`.
    pub fn alloc_payload(&self, key: u64, val: u64, epoch: u64) -> PayloadId {
        let mut slab = self.slab.lock();
        let payload = Payload {
            key,
            val,
            birth: epoch,
            retire: LIVE,
        };
        let idx = if let Some(idx) = slab.free.pop() {
            slab.slots[idx] = payload;
            idx
        } else {
            slab.slots.push(payload);
            slab.slots.len() - 1
        };
        PayloadId(idx as u64)
    }

    /// Abandons a payload that belongs to an *aborted* transaction: the
    /// record was never part of any durable state (its birth epoch is more
    /// recent than every possible recovery horizon), so its slot can be
    /// recycled immediately.
    pub fn abandon_payload(&self, id: PayloadId) {
        let mut slab = self.slab.lock();
        let idx = id.0 as usize;
        slab.slots[idx].birth = LIVE;
        slab.slots[idx].retire = 0;
        slab.free.push(idx);
    }

    /// Marks the payload `id` as retired in `epoch` (the key/value pair it
    /// represents has been removed or replaced).
    pub fn retire_payload(&self, id: PayloadId, epoch: u64) {
        let mut slab = self.slab.lock();
        let slot = &mut slab.slots[id.0 as usize];
        debug_assert_eq!(slot.retire, LIVE, "payload retired twice");
        slot.retire = epoch;
    }

    /// Advances the epoch clock by one and performs the periodic persistence
    /// work for every epoch that is now two behind: all payloads born or
    /// retired in those epochs are written back (one simulated cache-line
    /// flush per record, one fence per batch), and slots whose retirement is
    /// durable are recycled.
    ///
    /// Returns the new current epoch.
    pub fn advance_epoch(&self) -> u64 {
        let new_epoch = self.mgr.advance_epoch();
        // `persisted_epoch` holds the *exclusive* end of the epoch range
        // whose payload births/retirements have been written back.
        let durable = durable_end(new_epoch);
        let mut slab = self.slab.lock();
        let prev = self.persisted_epoch.load(Ordering::Acquire);
        if durable > prev {
            let mut flushed = 0u64;
            let mut recycle = Vec::new();
            for (idx, p) in slab.slots.iter().enumerate() {
                let born_now = p.birth >= prev && p.birth < durable;
                let retired_now = p.retire != LIVE && p.retire >= prev && p.retire < durable;
                if born_now || retired_now {
                    flushed += 1;
                }
                if p.retire != LIVE && p.retire < durable {
                    recycle.push(idx);
                }
            }
            if flushed > 0 {
                self.nvm.flush_lines(flushed);
            }
            self.nvm.fence();
            for idx in recycle {
                // A slot is recycled only once its retirement is durable, so
                // recovery can never resurrect it.
                if !slab.free.contains(&idx) {
                    slab.free.push(idx);
                    slab.slots[idx].birth = LIVE; // tombstone
                }
            }
            self.persisted_epoch.store(durable, Ordering::Release);
        }
        new_epoch
    }

    /// nbMontage `sync()`: makes everything completed before the call
    /// durable by advancing the epoch twice.
    pub fn sync(&self) {
        self.advance_epoch();
        self.advance_epoch();
    }

    /// Simulates post-crash recovery: returns the key/value mapping as of the
    /// end of epoch `current - 2` (the nbMontage recovery point).  A payload
    /// is recovered if it was born in a durable epoch and either never
    /// retired or retired after the recovery point.
    pub fn recover(&self) -> HashMap<u64, u64> {
        let crash_epoch = self.current_epoch();
        let horizon = durable_end(crash_epoch);
        let slab = self.slab.lock();
        let mut out = HashMap::new();
        for p in slab.slots.iter() {
            if p.birth == LIVE {
                continue; // recycled tombstone
            }
            if p.birth < horizon && (p.retire == LIVE || p.retire >= horizon) {
                out.insert(p.key, p.val);
            }
        }
        out
    }

    /// Counters describing the domain's state.
    pub fn stats(&self) -> DomainStats {
        let slab = self.slab.lock();
        let live = slab
            .slots
            .iter()
            .filter(|p| p.birth != LIVE && p.retire == LIVE)
            .count();
        DomainStats {
            live_payloads: live,
            free_slots: slab.free.len(),
            persisted_epoch: self.persisted_epoch.load(Ordering::Relaxed),
            current_epoch: self.current_epoch(),
        }
    }
}

/// A background thread that advances the domain's epoch at a fixed period,
/// like nbMontage's epoch advancer.
pub struct EpochAdvancer {
    stop: Arc<std::sync::atomic::AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl EpochAdvancer {
    /// Spawns an advancer ticking every `period`.
    pub fn spawn(domain: Arc<PersistenceDomain>, period: std::time::Duration) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                domain.advance_epoch();
            }
        });
        Self {
            stop,
            join: Some(join),
        }
    }
}

impl Drop for EpochAdvancer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Arc<PersistenceDomain> {
        PersistenceDomain::new(TxManager::new(), NvmCostModel::ZERO)
    }

    #[test]
    fn payloads_become_durable_after_two_epochs() {
        let d = domain();
        let e = d.current_epoch();
        d.alloc_payload(1, 10, e);
        // Not yet durable: recovery horizon is e - 2.
        assert!(d.recover().is_empty());
        d.advance_epoch();
        d.advance_epoch();
        let rec = d.recover();
        assert_eq!(rec.get(&1), Some(&10));
    }

    #[test]
    fn retirement_hides_payload_after_horizon_passes() {
        let d = domain();
        let e = d.current_epoch();
        let id = d.alloc_payload(2, 20, e);
        d.sync();
        assert_eq!(d.recover().get(&2), Some(&20));
        let e2 = d.current_epoch();
        d.retire_payload(id, e2);
        // Retirement not yet durable: still recovered.
        assert_eq!(d.recover().get(&2), Some(&20));
        d.sync();
        assert!(!d.recover().contains_key(&2));
    }

    #[test]
    fn retired_slots_are_recycled_only_when_durable() {
        let d = domain();
        let e = d.current_epoch();
        let id = d.alloc_payload(3, 30, e);
        d.retire_payload(id, e);
        assert_eq!(d.stats().free_slots, 0);
        d.sync();
        assert_eq!(d.stats().free_slots, 1);
        // The recycled slot is reused by the next allocation.
        let id2 = d.alloc_payload(4, 40, d.current_epoch());
        assert_eq!(id2, id);
    }

    #[test]
    fn flush_and_fence_are_batched_per_epoch() {
        let d = domain();
        let e = d.current_epoch();
        for k in 0..100 {
            d.alloc_payload(k, k, e);
        }
        let (flushes_before, _) = d.nvm().stats().snapshot();
        assert_eq!(flushes_before, 0, "no eager flushing");
        d.sync();
        let (flushes, fences) = d.nvm().stats().snapshot();
        assert_eq!(flushes, 100, "one write-back per payload, batched");
        assert!(fences <= 4, "a handful of fences per epoch, not per op");
    }

    #[test]
    fn epoch_validation_is_enabled_on_the_manager() {
        let mgr = TxManager::new();
        assert!(!mgr.epoch_validation_enabled());
        let _d = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        assert!(mgr.epoch_validation_enabled());
    }

    #[test]
    fn advancer_ticks_in_background() {
        let d = domain();
        let before = d.current_epoch();
        {
            let _adv = EpochAdvancer::spawn(Arc::clone(&d), std::time::Duration::from_millis(5));
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        assert!(d.current_epoch() > before);
    }
}
