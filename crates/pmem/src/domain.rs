//! The persistence domain: payload store + epoch protocol (nbMontage-style).
//!
//! nbMontage distinguishes *payloads* (semantically significant data — for a
//! mapping, the pile of key/value pairs) from *indices* (transient structures
//! kept in DRAM and rebuilt on recovery).  Payloads are tagged with the epoch
//! of the operation that created or retired them; wall-clock time is divided
//! into epochs, payloads are written back in batches at epoch boundaries, and
//! recovery after a crash in epoch `e` restores the state as of the end of
//! epoch `e - 2`.
//!
//! [`PersistenceDomain`] implements exactly this protocol over the simulated
//! NVM of [`crate::nvm`].  The epoch clock is the `TxManager`'s epoch word,
//! so that — with `TxManager::set_epoch_validation(true)` — Medley
//! transactions validate the epoch as part of their MCNS commit and therefore
//! always linearize entirely inside one epoch: this is the one-line
//! integration that gives txMontage failure atomicity "almost for free"
//! (paper Sec. 4.4).
//!
//! # Contention-scalable payload store
//!
//! The default backend ([`DomainBackend::Arena`]) shards the payload store
//! into **per-thread arenas**, one per `TxManager` thread slot (the manager
//! guarantees at most one live handle per slot, so each arena has a single
//! allocating thread).  The fast paths are lock-free:
//!
//! * **alloc** — pop the arena's Treiber free list (single popper: the
//!   owning slot) or bump-extend a lazily allocated chunk; tag the slot and
//!   push it on the arena's *dirty list* for its birth epoch;
//! * **retire** — store the retirement epoch into the slot (possibly from
//!   another thread) and push the slot on the dirty list for that epoch;
//! * **abandon** (aborted transaction) — flag the slot; it is recycled when
//!   its birth-epoch dirty list is consumed, or immediately if that has
//!   already happened.
//!
//! Dirty lists are **epoch-indexed**: each arena keeps a small ring of
//! intrusive lock-free lists, one per recent epoch.  [`PersistenceDomain::advance_epoch`]
//! consumes only the lists of the epochs crossing the durability horizon, so
//! the per-epoch write-back is `O(payloads born/retired in those epochs)`
//! rather than `O(every slot ever allocated)` as in the Mutex-slab design.
//!
//! ## Epoch lifecycle of one payload slot
//!
//! ```text
//!   alloc(e)                    retire(r)                advance past r
//!   ────────►  LIVE, birth=e  ───────────►  retired(r)  ───────────────►  FREE
//!      │        │  dirty[e%R] ◄─ birth          │  dirty[r%R] ◄─ retire     │
//!      │        │                               │                          │
//!      │        ▼ advance past e                ▼ advance past r           │
//!      │     birth written back            retirement written back,        │
//!      │     (payload durable,             slot recycled exactly once      │
//!      │      recoverable)                 (never before it is durable)    │
//!      │                                                                   │
//!      └── abort → ABANDONED ── birth list consumed ───────────────────────┘
//! ```
//!
//! `persisted_epoch` is advanced only *after* the write-back of the epochs it
//! covers, and [`PersistenceDomain::recover`] derives its horizon from
//! `persisted_epoch` under the same lock that serializes recycling — so
//! recovery can never claim durability for an epoch whose write-back has not
//! happened, and no payload visible at the horizon is recycled mid-scan.
//!
//! The previous single-`Mutex<Slab>` design is kept as
//! [`DomainBackend::MutexSlab`], the A/B baseline for the
//! `durable-*` throughput series.

use crate::nvm::{NvmCostModel, SimNvm};
use crate::value::{Value, MAX_VALUE_BYTES};
use medley::util::sync::Mutex;
use medley::util::CachePadded;
use medley::TxManager;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

/// A payload slot is retired but its retirement is not yet durable.
const LIVE: u64 = u64::MAX;

/// Birth sentinel of a slot that currently holds no payload (free, or still
/// being initialized by its owner).
const UNBORN: u64 = u64::MAX;

/// Identifier of a payload record (returned by
/// [`PersistenceDomain::alloc_payload`]).  With the arena backend the id
/// packs the owning thread slot and the size class into the high bits and
/// the slot index into the low bits; treat it as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadId(pub u64);

/// Which payload-store implementation a domain uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DomainBackend {
    /// Per-thread payload arenas with epoch-indexed dirty lists (lock-free
    /// alloc/retire fast paths, `O(dirty)` write-back per epoch).  The
    /// default.
    #[default]
    Arena,
    /// The original single `Mutex<Slab>` store whose write-back rescans
    /// every slot ever allocated.  Kept as the contended-throughput A/B
    /// baseline.
    MutexSlab,
}

/// Statistics of a persistence domain.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DomainStats {
    /// Payload records currently considered live (born, not retired, not
    /// abandoned).
    pub live_payloads: usize,
    /// Payload slots available for reuse.
    pub free_slots: usize,
    /// Payload slots ever created (live + free + in flight).
    pub allocated_slots: usize,
    /// Epoch up to which payloads have been written back.
    pub persisted_epoch: u64,
    /// Current epoch.
    pub current_epoch: u64,
}

// ---------------------------------------------------------------------------
// PayloadId encoding (arena backend)
// ---------------------------------------------------------------------------

/// Bits of a [`PayloadId`] holding the slot index within its size class.
const IDX_BITS: u32 = 38;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;
/// Bits holding the size class (directly above the index).
const CLASS_BITS: u32 = 2;
const CLASS_MASK: u64 = (1 << CLASS_BITS) - 1;

#[inline]
fn encode_id(tid: usize, class: usize, idx: u64) -> PayloadId {
    debug_assert!(idx <= IDX_MASK);
    debug_assert!(class < CLASSES);
    PayloadId(((tid as u64) << (IDX_BITS + CLASS_BITS)) | ((class as u64) << IDX_BITS) | idx)
}

#[inline]
fn decode_id(id: PayloadId) -> (usize, usize, u64) {
    (
        (id.0 >> (IDX_BITS + CLASS_BITS)) as usize,
        ((id.0 >> IDX_BITS) & CLASS_MASK) as usize,
        id.0 & IDX_MASK,
    )
}

// ---------------------------------------------------------------------------
// Arena backend
// ---------------------------------------------------------------------------

/// Slot-state flags (bits of `Slot::state`).
const BIRTH_FLUSHED: u64 = 1 << 0;
const RETIRE_FLUSHED: u64 = 1 << 1;
/// The slot has been pushed on its arena's free list (set exactly once per
/// incarnation — this is the per-slot flag that replaces the old
/// `free.contains(&idx)` scan and makes double-recycling impossible).
const FREED: u64 = 1 << 2;
/// The payload belongs to an aborted transaction and was never part of any
/// durable state; recycled when its birth dirty entry is consumed.
const ABANDONED: u64 = 1 << 3;

const KIND_BIRTH: usize = 0;
const KIND_RETIRE: usize = 1;

/// Size of the per-arena epoch ring of dirty lists.  Unconsumed dirty epochs
/// span at most the two epochs above the durability horizon (plus a little
/// slack for stale tags, which the drain re-buckets), so 8 is ample.
const RING: usize = 8;

const CHUNK_SHIFT: u32 = 13;
/// Slots per lazily-allocated arena chunk.
const CHUNK_SIZE: usize = 1 << CHUNK_SHIFT;
/// Maximum chunks per size class (bounds each class at 8Mi slots —
/// comfortably above the paper's 1M-key workloads even when one thread
/// preloads the whole store; the chunk table itself is a few KiB).
const MAX_CHUNKS: usize = 1024;

/// Number of payload size classes.  Class 0 is the historical 64-byte
/// "word" slot whose value lives in the slot's `val` field (and which
/// doubles as the metadata slot of spilled oversized records); classes 1
/// and 2 append an inline data area to each slot.
const CLASSES: usize = 3;
/// Inline value data words appended per slot, per class.
const CLASS_DATA_WORDS: [usize; CLASSES] = [0, 8, 56];
/// Inline value byte capacity per class (class 0: the `val` word).
const CLASS_CAPS: [usize; CLASSES] = [8, 64, 448];
/// `vlen` sentinel: the slot's value is the plain word in `val`.
const VLEN_WORD: u64 = u64::MAX;
/// Data words per overflow block (a 256-byte block: next link + 248 data
/// bytes).  Values larger than the biggest inline class spill entirely to a
/// chain of these, length-prefixed by the head slot's `vlen`.
const OVF_DATA_WORDS: usize = 31;
const OVF_DATA_BYTES: usize = OVF_DATA_WORDS * 8;

/// One payload slot: a key/value pair, its birth/retire epochs, its state
/// flags, and the intrusive links threading it onto its class's free list
/// and (per kind) onto one epoch-indexed dirty list.  Classes 1 and 2 store
/// their value bytes in the chunk's side data area; class 0 stores a word
/// in `val` (`vlen == VLEN_WORD`) or an overflow-chain head (`val` = block
/// index + 1, `vlen` = byte length).
struct Slot {
    key: AtomicU64,
    val: AtomicU64,
    /// Value byte length, or [`VLEN_WORD`] for a plain word in `val`.
    vlen: AtomicU64,
    /// Birth epoch; [`UNBORN`] while the slot is free.  Stored with
    /// `Release` as the publication of `key`/`val`/data.
    birth: AtomicU64,
    /// Retirement epoch; [`LIVE`] while the payload is live.
    retire: AtomicU64,
    state: AtomicU64,
    /// Next free slot (index + 1; 0 = end).  Meaningful only while FREED.
    free_link: AtomicU64,
    /// Next dirty entry per kind (encoded entry + 1; 0 = end).  Meaningful
    /// only while the slot sits on the corresponding dirty list.
    links: [AtomicU64; 2],
}

impl Default for Slot {
    fn default() -> Self {
        Self {
            key: AtomicU64::new(0),
            val: AtomicU64::new(0),
            vlen: AtomicU64::new(VLEN_WORD),
            birth: AtomicU64::new(UNBORN),
            retire: AtomicU64::new(LIVE),
            state: AtomicU64::new(0),
            free_link: AtomicU64::new(0),
            links: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

/// Picks the size class for a value: words in class 0, small/large blobs in
/// the inline classes, oversized blobs spilled from a class-0 head slot.
#[inline]
fn class_for(val: &Value) -> usize {
    match val {
        Value::U64(_) => 0,
        Value::Bytes(b) if b.len() <= CLASS_CAPS[1] => 1,
        Value::Bytes(b) if b.len() <= CLASS_CAPS[2] => 2,
        Value::Bytes(_) => 0,
    }
}

/// Simulated cache lines written back for one payload birth: the slot's
/// metadata line, plus the class's inline data area, plus — for spilled
/// records — four lines per 256-byte overflow block.
#[inline]
fn birth_lines(class: usize, vlen: u64) -> u64 {
    match class {
        0 if vlen == VLEN_WORD => 1,
        0 => 1 + (vlen as usize).div_ceil(OVF_DATA_BYTES).max(1) as u64 * 4,
        1 => 2,
        _ => 8,
    }
}

/// [`birth_lines`] keyed by a [`Value`] (used by the Mutex-slab baseline so
/// both backends charge the same write-back cost per record).
#[inline]
fn value_lines(val: &Value) -> u64 {
    let class = class_for(val);
    let vlen = match val {
        Value::U64(_) => VLEN_WORD,
        Value::Bytes(b) => b.len() as u64,
    };
    birth_lines(class, vlen)
}

/// One lazily-allocated chunk of a size class: the slot metadata plus the
/// class's inline value area (`data_words` words per slot).
struct Chunk {
    slots: Box<[Slot]>,
    data: Box<[AtomicU64]>,
}

/// The chunked slab of one size class within one arena.
struct ClassSlab {
    chunks: Box<[OnceLock<Chunk>]>,
    data_words: usize,
    /// Published slot count (bump-extended by the owning thread only).
    len: AtomicU64,
    /// Treiber free-list head (slot index + 1; 0 = empty).  Pushed by any
    /// thread (recycler, abandoner), popped only by the owning thread —
    /// single-popper Treiber is ABA-free.
    free_head: AtomicU64,
    free_count: AtomicU64,
}

impl ClassSlab {
    fn new(data_words: usize) -> Self {
        Self {
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
            data_words,
            len: AtomicU64::new(0),
            free_head: AtomicU64::new(0),
            free_count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn chunk(&self, idx: u64) -> &Chunk {
        self.chunks[(idx >> CHUNK_SHIFT) as usize]
            .get()
            .expect("published slot")
    }

    #[inline]
    fn slot(&self, idx: u64) -> &Slot {
        &self.chunk(idx).slots[(idx & (CHUNK_SIZE as u64 - 1)) as usize]
    }

    /// The inline value area of slot `idx` (empty for class 0).
    #[inline]
    fn data(&self, idx: u64) -> &[AtomicU64] {
        let off = (idx & (CHUNK_SIZE as u64 - 1)) as usize;
        &self.chunk(idx).data[off * self.data_words..(off + 1) * self.data_words]
    }

    /// Pops a free slot.  Only the owning thread calls this, so the Treiber
    /// pop has a single popper and cannot suffer ABA.
    fn pop_free(&self) -> Option<u64> {
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            if head == 0 {
                return None;
            }
            let idx = head - 1;
            let next = self.slot(idx).free_link.load(Ordering::Relaxed);
            if self
                .free_head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.free_count.fetch_sub(1, Ordering::Relaxed);
                return Some(idx);
            }
        }
    }

    /// Pushes `idx` on the free list (any thread).
    fn push_free(&self, idx: u64) {
        let slot = self.slot(idx);
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            slot.free_link.store(head, Ordering::Relaxed);
            if self
                .free_head
                .compare_exchange_weak(head, idx + 1, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                self.free_count.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Extends the class by one slot (owning thread only).
    fn bump(&self) -> u64 {
        let idx = self.len.load(Ordering::Relaxed);
        let chunk = (idx >> CHUNK_SHIFT) as usize;
        assert!(chunk < MAX_CHUNKS, "payload arena exhausted");
        let words = self.data_words;
        self.chunks[chunk].get_or_init(|| Chunk {
            slots: (0..CHUNK_SIZE)
                .map(|_| Slot::default())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            data: (0..CHUNK_SIZE * words)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        });
        // Fresh slots carry `birth == UNBORN`, so publishing the length
        // before the slot is tagged cannot expose uninitialized payloads.
        self.len.store(idx + 1, Ordering::Release);
        idx
    }
}

/// One 256-byte overflow block of a spilled oversized value.
struct OvfBlock {
    /// Next block in the chain (index + 1; 0 = end).  Doubles as the
    /// free-list link while the block is free — the lifetimes are disjoint.
    next: AtomicU64,
    data: [AtomicU64; OVF_DATA_WORDS],
}

impl Default for OvfBlock {
    fn default() -> Self {
        Self {
            next: AtomicU64::new(0),
            data: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The per-arena overflow-block slab (same single-popper discipline as the
/// slot free lists: popped only by the owning thread during allocation,
/// pushed by whoever recycles the head slot under the recycle lock).
struct OvfSlab {
    chunks: Box<[OnceLock<Box<[OvfBlock]>>]>,
    len: AtomicU64,
    free_head: AtomicU64,
    free_count: AtomicU64,
}

impl Default for OvfSlab {
    fn default() -> Self {
        Self {
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
            len: AtomicU64::new(0),
            free_head: AtomicU64::new(0),
            free_count: AtomicU64::new(0),
        }
    }
}

impl OvfSlab {
    #[inline]
    fn block(&self, idx: u64) -> &OvfBlock {
        let chunk = (idx >> CHUNK_SHIFT) as usize;
        let off = (idx & (CHUNK_SIZE as u64 - 1)) as usize;
        &self.chunks[chunk].get().expect("published block")[off]
    }

    fn pop_free(&self) -> Option<u64> {
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            if head == 0 {
                return None;
            }
            let idx = head - 1;
            let next = self.block(idx).next.load(Ordering::Relaxed);
            if self
                .free_head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.free_count.fetch_sub(1, Ordering::Relaxed);
                return Some(idx);
            }
        }
    }

    fn push_free(&self, idx: u64) {
        let block = self.block(idx);
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            block.next.store(head, Ordering::Relaxed);
            if self
                .free_head
                .compare_exchange_weak(head, idx + 1, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                self.free_count.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    fn bump(&self) -> u64 {
        let idx = self.len.load(Ordering::Relaxed);
        let chunk = (idx >> CHUNK_SHIFT) as usize;
        assert!(chunk < MAX_CHUNKS, "overflow slab exhausted");
        self.chunks[chunk].get_or_init(|| {
            (0..CHUNK_SIZE)
                .map(|_| OvfBlock::default())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        self.len.store(idx + 1, Ordering::Release);
        idx
    }
}

/// One thread slot's payload arena: one chunked slab per size class, the
/// overflow-block slab, and the epoch ring of dirty lists shared by all
/// classes.
struct Arena {
    classes: [ClassSlab; CLASSES],
    ovf: OvfSlab,
    /// Epoch-indexed dirty-list heads (encoded entry + 1; 0 = empty).
    dirty: [AtomicU64; RING],
}

impl Default for Arena {
    fn default() -> Self {
        Self {
            classes: std::array::from_fn(|c| ClassSlab::new(CLASS_DATA_WORDS[c])),
            ovf: OvfSlab::default(),
            dirty: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Arena {
    /// Pushes the (class, slot, kind) dirty entry on the list of `epoch`
    /// (any thread; lock-free Treiber push).
    fn push_dirty(&self, epoch: u64, class: usize, idx: u64, kind: usize) {
        let enc = (idx * CLASSES as u64 + class as u64) * 2 + kind as u64;
        let head = &self.dirty[(epoch % RING as u64) as usize];
        let slot = self.classes[class].slot(idx);
        loop {
            let h = head.load(Ordering::Acquire);
            slot.links[kind].store(h, Ordering::Relaxed);
            if head
                .compare_exchange_weak(h, enc + 1, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Writes `val` into slot (`class`, `idx`)'s value storage.  Owning
    /// thread only, before the `Release` publication of `birth`.
    fn write_value(&self, class: usize, idx: u64, val: &Value) {
        let s = self.classes[class].slot(idx);
        match val {
            Value::U64(v) => {
                debug_assert_eq!(class, 0);
                s.val.store(*v, Ordering::Relaxed);
                s.vlen.store(VLEN_WORD, Ordering::Relaxed);
            }
            Value::Bytes(b) if class > 0 => {
                debug_assert!(b.len() <= CLASS_CAPS[class]);
                let data = self.classes[class].data(idx);
                for (i, part) in b.chunks(8).enumerate() {
                    let mut w = [0u8; 8];
                    w[..part.len()].copy_from_slice(part);
                    data[i].store(u64::from_le_bytes(w), Ordering::Relaxed);
                }
                s.vlen.store(b.len() as u64, Ordering::Relaxed);
            }
            Value::Bytes(b) => {
                // Oversized record: the value spills to a length-prefixed
                // overflow chain (`vlen` is the prefix, `val` the head).
                s.val.store(self.alloc_ovf_chain(b), Ordering::Relaxed);
                s.vlen.store(b.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Builds the overflow chain for `bytes`, tail to head (so every `next`
    /// link is written before the head is published), and returns the head
    /// block index + 1.
    fn alloc_ovf_chain(&self, bytes: &[u8]) -> u64 {
        let nblocks = bytes.len().div_ceil(OVF_DATA_BYTES).max(1);
        let mut next = 0u64;
        for i in (0..nblocks).rev() {
            let idx = self.ovf.pop_free().unwrap_or_else(|| self.ovf.bump());
            let blk = self.ovf.block(idx);
            let end = bytes.len().min((i + 1) * OVF_DATA_BYTES);
            for (w, part) in bytes[i * OVF_DATA_BYTES..end].chunks(8).enumerate() {
                let mut buf = [0u8; 8];
                buf[..part.len()].copy_from_slice(part);
                blk.data[w].store(u64::from_le_bytes(buf), Ordering::Relaxed);
            }
            blk.next.store(next, Ordering::Relaxed);
            next = idx + 1;
        }
        next
    }

    /// Reads the value of slot (`class`, `idx`).  Callers hold the recycle
    /// lock (recovery scan), so the slot cannot be recycled — and its
    /// overflow chain cannot be reclaimed — mid-read.
    fn read_value(&self, class: usize, idx: u64) -> Value {
        let s = self.classes[class].slot(idx);
        let vlen = s.vlen.load(Ordering::Relaxed);
        if vlen == VLEN_WORD {
            return Value::U64(s.val.load(Ordering::Relaxed));
        }
        let len = (vlen as usize).min(MAX_VALUE_BYTES);
        let mut out = Vec::with_capacity(len);
        if class > 0 {
            let data = self.classes[class].data(idx);
            'words: for w in data {
                for byte in w.load(Ordering::Relaxed).to_le_bytes() {
                    if out.len() == len {
                        break 'words;
                    }
                    out.push(byte);
                }
            }
        } else {
            let mut head = s.val.load(Ordering::Relaxed);
            while head != 0 && out.len() < len {
                let blk = self.ovf.block(head - 1);
                'blk: for w in &blk.data {
                    for byte in w.load(Ordering::Relaxed).to_le_bytes() {
                        if out.len() == len {
                            break 'blk;
                        }
                        out.push(byte);
                    }
                }
                head = blk.next.load(Ordering::Relaxed);
            }
        }
        Value::from_bytes(&out)
    }
}

/// The sharded payload store.
struct ArenaStore {
    arenas: Box<[CachePadded<Arena>]>,
    /// Serializes slot recycling against recovery scans (and the periodic
    /// drains against each other).  Never taken on the alloc/retire fast
    /// paths.
    recycle_lock: Mutex<()>,
}

impl ArenaStore {
    fn new(max_threads: usize) -> Self {
        Self {
            arenas: (0..max_threads)
                .map(|_| CachePadded::new(Arena::default()))
                .collect(),
            recycle_lock: Mutex::new(()),
        }
    }

    /// Recycles a slot exactly once per incarnation (the FREED flag makes a
    /// second attempt a no-op).  A spilled record's overflow chain is
    /// released with its head slot; every caller holds the recycle lock, so
    /// no recovery scan can be walking the chain concurrently.
    fn free_slot(arena: &Arena, class: usize, idx: u64) {
        let s = arena.classes[class].slot(idx);
        if s.state.fetch_or(FREED, Ordering::AcqRel) & FREED == 0 {
            if class == 0 && s.vlen.load(Ordering::Relaxed) != VLEN_WORD {
                let mut head = s.val.load(Ordering::Relaxed);
                while head != 0 {
                    // Read the link before the push overwrites it with the
                    // free-list link (they share the `next` field).
                    let next = arena.ovf.block(head - 1).next.load(Ordering::Relaxed);
                    arena.ovf.push_free(head - 1);
                    head = next;
                }
            }
            s.vlen.store(VLEN_WORD, Ordering::Relaxed);
            s.birth.store(UNBORN, Ordering::Release);
            arena.classes[class].push_free(idx);
        }
    }

    /// Consumes one epoch bucket of one arena: write back every due
    /// birth/retirement, recycle slots whose retirement (or abandonment) is
    /// resolved, and re-bucket entries whose tag was moved to a later epoch.
    /// Returns the number of cache lines to write back.  Caller holds
    /// `recycle_lock`.
    ///
    /// ## Recycling handoff (why freeing waits for *both* entries)
    ///
    /// The dirty lists are intrusive: each slot owns its birth/retire link
    /// fields, so a slot must never be recycled — and thus reallocated,
    /// which pushes a *new* birth entry and overwrites the link — while one
    /// of its old entries is still sitting in some bucket (the overwrite
    /// would splice the new list into the old one and could even close a
    /// cycle, hanging the next drain).  A retirement's bucket can be
    /// consumed before its birth's (LIFO order within one shared `e % RING`
    /// bucket, or a birth entry stranded by a push/drain race), so the free
    /// is a handoff: whichever of the two consumptions observes the other's
    /// `*_FLUSHED` flag already set (the `fetch_or`s totally order them)
    /// recycles the slot.  Only then is every reference to the slot's links
    /// gone.
    fn drain_bucket(&self, arena: &Arena, bucket: usize, durable: u64) -> u64 {
        let mut entry = arena.dirty[bucket].swap(0, Ordering::AcqRel);
        let mut flushed = 0u64;
        while entry != 0 {
            let enc = entry - 1;
            let kind = (enc % 2) as usize;
            let combined = enc / 2;
            let class = (combined % CLASSES as u64) as usize;
            let idx = combined / CLASSES as u64;
            let s = arena.classes[class].slot(idx);
            // Read the successor before any re-push can reuse the link.
            entry = s.links[kind].load(Ordering::Relaxed);
            if kind == KIND_BIRTH {
                let b = s.birth.load(Ordering::Acquire);
                if b == UNBORN {
                    continue; // already recycled
                }
                if b >= durable && s.state.load(Ordering::Relaxed) & ABANDONED == 0 {
                    // Tag moved to a later epoch (standalone-op re-
                    // validation): not due yet, re-bucket.
                    arena.push_dirty(b, class, idx, KIND_BIRTH);
                    continue;
                }
                let st = s.state.fetch_or(BIRTH_FLUSHED, Ordering::AcqRel);
                if st & ABANDONED != 0 {
                    // Never part of any durable state: recycle, no flush.
                    // (If the abandoner saw BIRTH_FLUSHED already set it
                    // recycled the slot itself; `free_slot` is idempotent.)
                    Self::free_slot(arena, class, idx);
                } else {
                    if st & BIRTH_FLUSHED == 0 {
                        // A birth writes back the whole record: metadata
                        // line, inline data area, overflow chain.
                        flushed += birth_lines(class, s.vlen.load(Ordering::Relaxed));
                    }
                    if st & RETIRE_FLUSHED != 0 {
                        // The retirement was written back first and deferred
                        // the recycle to us (see the handoff note above).
                        Self::free_slot(arena, class, idx);
                    }
                }
            } else {
                let r = s.retire.load(Ordering::Acquire);
                if r == LIVE {
                    continue; // defensive: no pending retirement
                }
                if r >= durable {
                    arena.push_dirty(r, class, idx, KIND_RETIRE);
                    continue;
                }
                let st = s.state.fetch_or(RETIRE_FLUSHED, Ordering::AcqRel);
                if st & RETIRE_FLUSHED == 0 {
                    // A retirement only touches the metadata line.
                    flushed += 1;
                }
                // A retirement is recycled only once it is durable (so
                // recovery can never resurrect the slot) *and* only via the
                // handoff: if the birth entry is still pending somewhere,
                // its consumption performs the free.
                if st & BIRTH_FLUSHED != 0 {
                    Self::free_slot(arena, class, idx);
                }
            }
        }
        flushed
    }
}

// ---------------------------------------------------------------------------
// Mutex-slab backend (A/B baseline)
// ---------------------------------------------------------------------------

/// One payload record of the Mutex-slab baseline.
#[derive(Debug, Clone)]
struct Payload {
    key: u64,
    val: Value,
    birth: u64,
    retire: u64,
    /// Per-slot recycle flag (replaces the old `free.contains(&idx)` scan,
    /// which was O(free²) per epoch and double-pushed abandoned slots).
    freed: bool,
}

#[derive(Debug, Default)]
struct Slab {
    slots: Vec<Payload>,
    free: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

enum Store {
    Arena(ArenaStore),
    MutexSlab(Mutex<Slab>),
}

/// An nbMontage-style persistence domain bound to one [`TxManager`].
///
/// Payload arenas are registered per manager thread slot: the domain sizes
/// its store from [`TxManager::max_threads`] and callers identify their
/// arena by the thread-slot id (`Ctx::tid` / `ThreadHandle::tid`), so a
/// domain must only be used with handles of the manager it was created on.
pub struct PersistenceDomain {
    mgr: Arc<TxManager>,
    nvm: SimNvm,
    store: Store,
    /// Epoch up to which all payload births/retirements have been "written
    /// back" to simulated NVM (exclusive).  Advanced only after the
    /// write-back of the epochs it covers.
    persisted_epoch: AtomicU64,
}

impl std::fmt::Debug for PersistenceDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistenceDomain")
            .field("backend", &self.backend())
            .field("current_epoch", &self.current_epoch())
            .field(
                "persisted_epoch",
                &self.persisted_epoch.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// Exclusive upper bound of the durable epochs at clock value `epoch`:
/// epochs `0 .. durable_end(epoch)` are durable.  Recovery at epoch `e`
/// restores the state as of the *end of epoch `e - 2`*, so nothing at all is
/// durable until the clock has reached 2 (the seed's `saturating_sub`
/// arithmetic conflated "epoch 0 is durable" with "nothing is durable yet",
/// recovering fresh epoch-0 payloads before any write-back and skipping them
/// in the write-back batches).
#[inline]
fn durable_end(epoch: u64) -> u64 {
    if epoch >= 2 {
        epoch - 1
    } else {
        0
    }
}

impl PersistenceDomain {
    /// Creates a domain on `mgr` with the given NVM cost model and the
    /// default [`DomainBackend::Arena`] store, and turns on epoch validation
    /// for all transactions of that manager.
    pub fn new(mgr: Arc<TxManager>, cost: NvmCostModel) -> Arc<Self> {
        Self::with_backend(mgr, cost, DomainBackend::default())
    }

    /// Creates a domain with an explicit payload-store backend (the
    /// Mutex-slab baseline exists for A/B throughput comparisons).
    pub fn with_backend(
        mgr: Arc<TxManager>,
        cost: NvmCostModel,
        backend: DomainBackend,
    ) -> Arc<Self> {
        mgr.set_epoch_validation(true);
        let store = match backend {
            DomainBackend::Arena => Store::Arena(ArenaStore::new(mgr.max_threads())),
            DomainBackend::MutexSlab => Store::MutexSlab(Mutex::new(Slab::default())),
        };
        Arc::new(Self {
            mgr,
            nvm: SimNvm::new(cost),
            store,
            persisted_epoch: AtomicU64::new(0),
        })
    }

    /// The payload-store backend in use.
    pub fn backend(&self) -> DomainBackend {
        match self.store {
            Store::Arena(_) => DomainBackend::Arena,
            Store::MutexSlab(_) => DomainBackend::MutexSlab,
        }
    }

    /// The transaction manager whose epoch word drives this domain.
    pub fn manager(&self) -> &Arc<TxManager> {
        &self.mgr
    }

    /// The simulated NVM device (for inspecting flush/fence counts).
    pub fn nvm(&self) -> &SimNvm {
        &self.nvm
    }

    /// Current epoch.
    pub fn current_epoch(&self) -> u64 {
        self.mgr.current_epoch()
    }

    /// Allocates a fixed-width word payload for `key -> val` — the
    /// historical entry point, now a thin wrapper over
    /// [`PersistenceDomain::alloc_value`].
    pub fn alloc_payload(&self, tid: usize, key: u64, val: u64, epoch: u64) -> PayloadId {
        self.alloc_value(tid, key, &Value::U64(val), epoch)
    }

    /// Allocates a payload record for `key -> val`, tagged with `epoch`, in
    /// the arena of thread slot `tid` (the caller's `Ctx::tid()` /
    /// `ThreadHandle::tid()`; the manager guarantees the slot has a single
    /// live owner, which is what makes the arena fast path safe).  The value
    /// lands in the size class fitting its byte length; oversized values
    /// spill from a class-0 head slot to a length-prefixed overflow chain.
    pub fn alloc_value(&self, tid: usize, key: u64, val: &Value, epoch: u64) -> PayloadId {
        assert!(
            val.byte_len() <= MAX_VALUE_BYTES,
            "payload value exceeds MAX_VALUE_BYTES"
        );
        match &self.store {
            Store::Arena(store) => {
                let arena = &store.arenas[tid];
                let class = class_for(val);
                let slab = &arena.classes[class];
                let idx = slab.pop_free().unwrap_or_else(|| slab.bump());
                let s = slab.slot(idx);
                s.key.store(key, Ordering::Relaxed);
                arena.write_value(class, idx, val);
                s.retire.store(LIVE, Ordering::Relaxed);
                s.state.store(0, Ordering::Relaxed);
                // Publishes the fields above to recovery/write-back scans.
                s.birth.store(epoch, Ordering::Release);
                arena.push_dirty(epoch, class, idx, KIND_BIRTH);
                self.repair_stale_bucket(tid, epoch);
                encode_id(tid, class, idx)
            }
            Store::MutexSlab(slab) => {
                let mut slab = slab.lock();
                let payload = Payload {
                    key,
                    val: val.clone(),
                    birth: epoch,
                    retire: LIVE,
                    freed: false,
                };
                let idx = if let Some(idx) = slab.free.pop() {
                    slab.slots[idx] = payload;
                    idx
                } else {
                    slab.slots.push(payload);
                    slab.slots.len() - 1
                };
                PayloadId(idx as u64)
            }
        }
    }

    /// Abandons a payload that belongs to an *aborted* transaction: the
    /// record was never part of any durable state (its birth epoch is more
    /// recent than every possible recovery horizon), so its slot is recycled
    /// — immediately in the slab baseline, and as soon as its birth-epoch
    /// dirty list is consumed in the arena store (at once if that already
    /// happened).
    pub fn abandon_payload(&self, id: PayloadId) {
        match &self.store {
            Store::Arena(store) => {
                let (tid, class, idx) = decode_id(id);
                let arena = &store.arenas[tid];
                let s = arena.classes[class].slot(idx);
                let st = s.state.fetch_or(ABANDONED, Ordering::AcqRel);
                debug_assert_eq!(st & FREED, 0, "payload abandoned after recycle");
                if st & BIRTH_FLUSHED != 0 {
                    // The birth dirty entry was already consumed (the epoch
                    // crossed the horizon while the transaction was in
                    // flight); nobody else will recycle the slot.  The free
                    // must happen under the recycle lock — recovery scans
                    // rely on it to pin every slot whose (old) birth they
                    // have already read, and a lock-free free here would let
                    // the owner reallocate the slot mid-scan and have the
                    // scan emit the new in-flight key/value under the old
                    // durable birth epoch.  Cold path: this branch only runs
                    // when an abort raced the durability horizon.
                    let _g = store.recycle_lock.lock();
                    ArenaStore::free_slot(arena, class, idx);
                }
            }
            Store::MutexSlab(slab) => {
                let mut slab = slab.lock();
                let idx = id.0 as usize;
                slab.slots[idx].birth = LIVE;
                slab.slots[idx].retire = 0;
                slab.slots[idx].freed = true;
                slab.free.push(idx);
            }
        }
    }

    /// Marks the payload `id` as retired in `epoch` (the key/value pair it
    /// represents has been removed or replaced).  May be called from any
    /// thread, not only the arena owner.
    pub fn retire_payload(&self, id: PayloadId, epoch: u64) {
        match &self.store {
            Store::Arena(store) => {
                let (tid, class, idx) = decode_id(id);
                let arena = &store.arenas[tid];
                let s = arena.classes[class].slot(idx);
                let prev = s.retire.swap(epoch, Ordering::AcqRel);
                debug_assert_eq!(prev, LIVE, "payload retired twice");
                arena.push_dirty(epoch, class, idx, KIND_RETIRE);
                self.repair_stale_bucket(tid, epoch);
            }
            Store::MutexSlab(slab) => {
                let mut slab = slab.lock();
                let slot = &mut slab.slots[id.0 as usize];
                debug_assert_eq!(slot.retire, LIVE, "payload retired twice");
                slot.retire = epoch;
            }
        }
    }

    /// Moves the birth tag of `id` from `from` to the later epoch `to`.
    ///
    /// Standalone (`NonTx`) operations read the epoch before their index
    /// update linearizes; if the clock advanced across the update, the
    /// payload would claim durability one horizon too early (it would be
    /// recovered at a cut the operation is not part of).  Re-tagging with an
    /// epoch read *after* the linearization is always conservative: the
    /// operation linearized no later than the re-read, so the payload can be
    /// lost with the newest epochs but never resurrected.  The write-back
    /// drain re-buckets the pending dirty entry to the new epoch.
    ///
    /// A CAS (never a blind store) so that a racing write-back — which may
    /// have already recycled and reallocated the slot — is left untouched.
    pub fn retag_birth(&self, id: PayloadId, from: u64, to: u64) {
        debug_assert!(from <= to);
        match &self.store {
            Store::Arena(store) => {
                let (tid, class, idx) = decode_id(id);
                let s = store.arenas[tid].classes[class].slot(idx);
                let _ = s
                    .birth
                    .compare_exchange(from, to, Ordering::AcqRel, Ordering::Relaxed);
            }
            Store::MutexSlab(slab) => {
                let mut slab = slab.lock();
                let slot = &mut slab.slots[id.0 as usize];
                if slot.birth == from && !slot.freed {
                    slot.birth = to;
                }
            }
        }
    }

    /// Moves the retirement tag of `id` from `from` to the later epoch `to`
    /// (see [`PersistenceDomain::retag_birth`] for the standalone-operation
    /// race this repairs).
    pub fn retag_retire(&self, id: PayloadId, from: u64, to: u64) {
        debug_assert!(from <= to);
        match &self.store {
            Store::Arena(store) => {
                let (tid, class, idx) = decode_id(id);
                let s = store.arenas[tid].classes[class].slot(idx);
                let _ = s
                    .retire
                    .compare_exchange(from, to, Ordering::AcqRel, Ordering::Relaxed);
            }
            Store::MutexSlab(slab) => {
                let mut slab = slab.lock();
                let slot = &mut slab.slots[id.0 as usize];
                if slot.retire == from && !slot.freed {
                    slot.retire = to;
                }
            }
        }
    }

    /// A dirty entry was pushed for an epoch that is already persisted (a
    /// stale tag, or a push that raced the write-back of its epoch): drain
    /// that bucket now so the write-back claim stays honest.  One relaxed
    /// load on the fast path; the lock is taken only in the racy case.
    fn repair_stale_bucket(&self, tid: usize, epoch: u64) {
        if epoch >= self.persisted_epoch.load(Ordering::Acquire) {
            return;
        }
        if let Store::Arena(store) = &self.store {
            let _g = store.recycle_lock.lock();
            let durable = self.persisted_epoch.load(Ordering::Relaxed);
            let flushed =
                store.drain_bucket(&store.arenas[tid], (epoch % RING as u64) as usize, durable);
            if flushed > 0 {
                self.nvm.flush_lines(flushed);
                self.nvm.fence();
            }
        }
    }

    /// Advances the epoch clock by one and performs the periodic persistence
    /// work for every epoch that is now two behind: all payloads born or
    /// retired in those epochs are written back (one simulated cache-line
    /// flush per record, one fence per batch), and slots whose retirement is
    /// durable are recycled.  With the arena store this consumes only the
    /// dirty lists of the crossing epochs — `O(dirty)`, not `O(all slots)`.
    ///
    /// Returns the new current epoch.
    pub fn advance_epoch(&self) -> u64 {
        let new_epoch = self.mgr.advance_epoch();
        // `persisted_epoch` holds the *exclusive* end of the epoch range
        // whose payload births/retirements have been written back.
        let durable = durable_end(new_epoch);
        match &self.store {
            Store::Arena(store) => {
                let _g = store.recycle_lock.lock();
                let prev = self.persisted_epoch.load(Ordering::Relaxed);
                if durable > prev {
                    let mut flushed = 0u64;
                    // Each bucket needs draining at most once even if the
                    // horizon jumped more than a full ring.
                    let lo = if durable - prev >= RING as u64 {
                        durable - RING as u64
                    } else {
                        prev
                    };
                    for e in lo..durable {
                        let bucket = (e % RING as u64) as usize;
                        for arena in store.arenas.iter() {
                            flushed += store.drain_bucket(arena, bucket, durable);
                        }
                    }
                    if flushed > 0 {
                        self.nvm.flush_lines(flushed);
                    }
                    self.nvm.fence();
                    // Published only after the write-back above, so a
                    // recovery horizon derived from it is always honest.
                    self.persisted_epoch.store(durable, Ordering::Release);
                }
            }
            Store::MutexSlab(slab) => {
                let mut slab = slab.lock();
                let prev = self.persisted_epoch.load(Ordering::Acquire);
                if durable > prev {
                    let mut flushed = 0u64;
                    let mut recycle = Vec::new();
                    for (idx, p) in slab.slots.iter().enumerate() {
                        if p.freed {
                            continue;
                        }
                        let born_now = p.birth >= prev && p.birth < durable;
                        let retired_now =
                            p.retire != LIVE && p.retire >= prev && p.retire < durable;
                        if born_now {
                            // Same cost model as the arena store: a birth
                            // writes back the whole record.
                            flushed += value_lines(&p.val);
                        } else if retired_now {
                            flushed += 1;
                        }
                        if p.retire != LIVE && p.retire < durable {
                            recycle.push(idx);
                        }
                    }
                    if flushed > 0 {
                        self.nvm.flush_lines(flushed);
                    }
                    self.nvm.fence();
                    for idx in recycle {
                        // A slot is recycled only once its retirement is
                        // durable, so recovery can never resurrect it; the
                        // per-slot flag makes the push exactly-once.
                        let slot = &mut slab.slots[idx];
                        if !slot.freed {
                            slot.freed = true;
                            slot.birth = LIVE; // tombstone
                            slab.free.push(idx);
                        }
                    }
                    self.persisted_epoch.store(durable, Ordering::Release);
                }
            }
        }
        new_epoch
    }

    /// nbMontage `sync()`: makes everything completed before the call
    /// durable by advancing the epoch twice.
    ///
    /// With the arena store this additionally drains *every* dirty bucket
    /// (not only the ones the two advances crossed): a dirty entry pushed
    /// concurrently with the drain of its own epoch can land after the
    /// bucket was consumed and would otherwise wait for the ring to wrap.
    /// `sync` is the quiescence point, so it settles such stragglers
    /// immediately.
    pub fn sync(&self) {
        self.advance_epoch();
        self.advance_epoch();
        if let Store::Arena(store) = &self.store {
            let _g = store.recycle_lock.lock();
            let durable = self.persisted_epoch.load(Ordering::Relaxed);
            let mut flushed = 0u64;
            for arena in store.arenas.iter() {
                for bucket in 0..RING {
                    flushed += store.drain_bucket(arena, bucket, durable);
                }
            }
            if flushed > 0 {
                self.nvm.flush_lines(flushed);
                self.nvm.fence();
            }
        }
    }

    /// Simulates post-crash recovery: returns the key/value mapping as of
    /// the recovery horizon.  A payload is recovered if it was born in a
    /// durable epoch and either never retired or retired at/after the
    /// horizon.  Equivalent to [`PersistenceDomain::recover_with_horizon`]
    /// without the horizon.
    pub fn recover(&self) -> HashMap<u64, Value> {
        self.recover_with_horizon().0
    }

    /// [`PersistenceDomain::recover`] for stores known to hold only word
    /// values (the historical fixed-width interface; panics if a blob value
    /// is encountered).
    pub fn recover_u64(&self) -> HashMap<u64, u64> {
        self.recover()
            .into_iter()
            .map(|(k, v)| {
                let v = v
                    .as_u64()
                    .expect("recover_u64 on a store holding blob values");
                (k, v)
            })
            .collect()
    }

    /// Post-crash recovery, also returning the horizon used (the epoch cut
    /// the mapping corresponds to: everything before it is included, nothing
    /// at or after it).
    ///
    /// The horizon is `persisted_epoch` — the exclusive end of the epochs
    /// whose write-back has actually happened — read under the same lock
    /// that serializes recycling.  Deriving it from `current_epoch()` (as
    /// the old code did) races a concurrent [`PersistenceDomain::advance_epoch`]: the clock is
    /// bumped *before* the write-back, so a recovery sampling the clock in
    /// that window would claim durability for epochs that were never written
    /// back.  Holding the recycle lock additionally pins every payload
    /// retired at/after the horizon for the duration of the scan.
    pub fn recover_with_horizon(&self) -> (HashMap<u64, Value>, u64) {
        match &self.store {
            Store::Arena(store) => {
                let _g = store.recycle_lock.lock();
                let horizon = self.persisted_epoch.load(Ordering::Acquire);
                let mut out = HashMap::new();
                for arena in store.arenas.iter() {
                    for (class, slab) in arena.classes.iter().enumerate() {
                        let len = slab.len.load(Ordering::Acquire);
                        for idx in 0..len {
                            let s = slab.slot(idx);
                            let b = s.birth.load(Ordering::Acquire);
                            if b == UNBORN || b >= horizon {
                                continue; // free, in-flight, or not yet durable
                            }
                            if s.state.load(Ordering::Relaxed) & ABANDONED != 0 {
                                continue; // aborted transaction's payload
                            }
                            let r = s.retire.load(Ordering::Relaxed);
                            if r == LIVE || r >= horizon {
                                out.insert(
                                    s.key.load(Ordering::Relaxed),
                                    arena.read_value(class, idx),
                                );
                            }
                        }
                    }
                }
                (out, horizon)
            }
            Store::MutexSlab(slab) => {
                let slab = slab.lock();
                // Same fix in the baseline: the horizon is what has been
                // written back, sampled under the slab lock (which
                // `advance_epoch` holds across write-back + publication).
                let horizon = self.persisted_epoch.load(Ordering::Acquire);
                let mut out = HashMap::new();
                for p in slab.slots.iter() {
                    if p.freed || p.birth == LIVE {
                        continue; // recycled tombstone
                    }
                    if p.birth < horizon && (p.retire == LIVE || p.retire >= horizon) {
                        out.insert(p.key, p.val.clone());
                    }
                }
                (out, horizon)
            }
        }
    }

    /// Counters describing the domain's state.
    pub fn stats(&self) -> DomainStats {
        match &self.store {
            Store::Arena(store) => {
                let _g = store.recycle_lock.lock();
                let mut live = 0usize;
                let mut free = 0usize;
                let mut allocated = 0usize;
                for arena in store.arenas.iter() {
                    for slab in arena.classes.iter() {
                        let len = slab.len.load(Ordering::Acquire);
                        allocated += len as usize;
                        free += slab.free_count.load(Ordering::Relaxed) as usize;
                        for idx in 0..len {
                            let s = slab.slot(idx);
                            let b = s.birth.load(Ordering::Acquire);
                            if b == UNBORN {
                                continue;
                            }
                            if s.state.load(Ordering::Relaxed) & ABANDONED != 0 {
                                continue;
                            }
                            if s.retire.load(Ordering::Relaxed) == LIVE {
                                live += 1;
                            }
                        }
                    }
                }
                DomainStats {
                    live_payloads: live,
                    free_slots: free,
                    allocated_slots: allocated,
                    persisted_epoch: self.persisted_epoch.load(Ordering::Relaxed),
                    current_epoch: self.current_epoch(),
                }
            }
            Store::MutexSlab(slab) => {
                let slab = slab.lock();
                let live = slab
                    .slots
                    .iter()
                    .filter(|p| !p.freed && p.birth != LIVE && p.retire == LIVE)
                    .count();
                DomainStats {
                    live_payloads: live,
                    free_slots: slab.free.len(),
                    allocated_slots: slab.slots.len(),
                    persisted_epoch: self.persisted_epoch.load(Ordering::Relaxed),
                    current_epoch: self.current_epoch(),
                }
            }
        }
    }
}

/// A background thread that advances the domain's epoch at a fixed period,
/// like nbMontage's epoch advancer.
pub struct EpochAdvancer {
    stop: Arc<std::sync::atomic::AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl EpochAdvancer {
    /// Spawns an advancer ticking every `period`.
    ///
    /// The tick schedule is absolute (`start + k·period`), not
    /// sleep-relative: epoch length is the system's durability promise (an
    /// operation is durable within two periods of completing), so an
    /// advancer that oversleeps — e.g. starved on an oversubscribed box —
    /// catches up instead of silently stretching the epochs and skipping
    /// write-back work.  The catch-up is *lag-bounded* (at most a few
    /// periods of back-to-back advances, then the schedule resyncs): an
    /// unbounded burst would advance the epoch continuously for as long as
    /// the backlog lasts, and since every epoch-validated transaction aborts
    /// when the epoch moves under it, a long burst livelocks all durable
    /// transactions in the system.
    pub fn spawn(domain: Arc<PersistenceDomain>, period: std::time::Duration) -> Self {
        const MAX_LAG_PERIODS: u32 = 4;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let mut next = std::time::Instant::now() + period;
            // Long periods are slept in bounded slices so a shutdown request
            // is honored promptly instead of after up to one full period
            // (µs/ms periods are unaffected: one slice covers them).
            const MAX_SLEEP_SLICE: std::time::Duration = std::time::Duration::from_millis(10);
            while !stop2.load(Ordering::Relaxed) {
                let now = std::time::Instant::now();
                if now < next {
                    std::thread::sleep((next - now).min(MAX_SLEEP_SLICE));
                    if std::time::Instant::now() < next {
                        continue;
                    }
                }
                domain.advance_epoch();
                next += period;
                let now = std::time::Instant::now();
                if now > next + period * MAX_LAG_PERIODS {
                    next = now;
                }
            }
        });
        Self {
            stop,
            join: Some(join),
        }
    }

    /// Requests the advancer thread to stop and joins it.
    ///
    /// Dropping an `EpochAdvancer` does the same implicitly; the explicit
    /// form exists so shutdown sequences can place the join deliberately —
    /// e.g. the durable `kvstore` server drains its workers first, then
    /// stops the advancer, then takes its final recovery cut, guaranteeing
    /// no epoch advance (and no write-back) races the cut.  After `shutdown`
    /// returns, the epoch clock is no longer ticking and no advancer-driven
    /// write-back can be in flight.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for EpochAdvancer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Arc<PersistenceDomain> {
        PersistenceDomain::new(TxManager::new(), NvmCostModel::ZERO)
    }

    fn both_backends() -> Vec<Arc<PersistenceDomain>> {
        [DomainBackend::Arena, DomainBackend::MutexSlab]
            .into_iter()
            .map(|b| PersistenceDomain::with_backend(TxManager::new(), NvmCostModel::ZERO, b))
            .collect()
    }

    #[test]
    fn payloads_become_durable_after_two_epochs() {
        for d in both_backends() {
            let e = d.current_epoch();
            d.alloc_payload(0, 1, 10, e);
            // Not yet durable: recovery horizon is e - 2.
            assert!(d.recover().is_empty());
            d.advance_epoch();
            d.advance_epoch();
            let rec = d.recover_u64();
            assert_eq!(rec.get(&1), Some(&10));
        }
    }

    #[test]
    fn retirement_hides_payload_after_horizon_passes() {
        for d in both_backends() {
            let e = d.current_epoch();
            let id = d.alloc_payload(0, 2, 20, e);
            d.sync();
            assert_eq!(d.recover_u64().get(&2), Some(&20));
            let e2 = d.current_epoch();
            d.retire_payload(id, e2);
            // Retirement not yet durable: still recovered.
            assert_eq!(d.recover_u64().get(&2), Some(&20));
            d.sync();
            assert!(!d.recover().contains_key(&2));
        }
    }

    #[test]
    fn retired_slots_are_recycled_only_when_durable() {
        for d in both_backends() {
            let e = d.current_epoch();
            let id = d.alloc_payload(0, 3, 30, e);
            d.retire_payload(id, e);
            assert_eq!(d.stats().free_slots, 0);
            d.sync();
            assert_eq!(d.stats().free_slots, 1);
            // The recycled slot is reused by the next allocation.
            let id2 = d.alloc_payload(0, 4, 40, d.current_epoch());
            assert_eq!(id2, id);
        }
    }

    #[test]
    fn retired_durable_slot_enters_free_list_exactly_once() {
        // Regression for the recycle loop double-pushing slots: a slot whose
        // retirement became durable must be recycled exactly once, no matter
        // how many more epochs pass over it.
        for d in both_backends() {
            let e = d.current_epoch();
            let id = d.alloc_payload(0, 7, 70, e);
            d.retire_payload(id, e);
            d.sync();
            assert_eq!(d.stats().free_slots, 1, "{:?}", d.backend());
            for _ in 0..6 {
                d.advance_epoch();
                assert_eq!(
                    d.stats().free_slots,
                    1,
                    "slot recycled more than once on {:?}",
                    d.backend()
                );
            }
            // One allocation consumes the recycled slot...
            let id2 = d.alloc_payload(0, 8, 80, d.current_epoch());
            assert_eq!(id2, id);
            assert_eq!(d.stats().free_slots, 0);
            // ...and the next one must get a fresh slot, not a duplicate.
            let id3 = d.alloc_payload(0, 9, 90, d.current_epoch());
            assert_ne!(id3, id2);
        }
    }

    #[test]
    fn abandoned_payloads_are_recycled_and_never_recovered() {
        for d in both_backends() {
            let e = d.current_epoch();
            let id = d.alloc_payload(0, 5, 50, e);
            d.abandon_payload(id);
            assert_eq!(d.stats().live_payloads, 0);
            d.sync();
            d.sync();
            assert!(d.recover().is_empty(), "{:?}", d.backend());
            assert_eq!(d.stats().free_slots, 1, "{:?}", d.backend());
            // Abandon after the birth epoch already crossed the horizon
            // (in-flight transaction overtaken by the clock).
            let e = d.current_epoch();
            let id = d.alloc_payload(0, 6, 60, e);
            d.sync(); // birth write-back happens with the payload in flight
            d.abandon_payload(id);
            assert!(!d.recover().contains_key(&6));
            d.sync();
            assert!(!d.recover().contains_key(&6));
            assert_eq!(d.stats().live_payloads, 0);
            // The first abandoned slot was recycled and reused by the second
            // allocation, so exactly one slot is free again.
            assert_eq!(d.stats().free_slots, 1, "{:?}", d.backend());
            assert_eq!(d.stats().allocated_slots, 1, "{:?}", d.backend());
        }
    }

    #[test]
    fn flush_and_fence_are_batched_per_epoch() {
        let d = domain();
        let e = d.current_epoch();
        for k in 0..100 {
            d.alloc_payload(0, k, k, e);
        }
        let (flushes_before, _) = d.nvm().stats().snapshot();
        assert_eq!(flushes_before, 0, "no eager flushing");
        d.sync();
        let (flushes, fences) = d.nvm().stats().snapshot();
        assert_eq!(flushes, 100, "one write-back per payload, batched");
        assert!(fences <= 4, "a handful of fences per epoch, not per op");
    }

    #[test]
    fn dirty_lists_make_write_back_proportional_to_churn() {
        // A large resident population must not be re-flushed by later
        // epochs: after the initial write-back, an epoch that saw k updates
        // flushes O(k) lines, independent of the resident set.
        let d = domain();
        let e = d.current_epoch();
        for k in 0..10_000 {
            d.alloc_payload(0, k, k, e);
        }
        d.sync();
        let (flushes_initial, _) = d.nvm().stats().snapshot();
        assert_eq!(flushes_initial, 10_000);
        // Two quiet epochs: nothing new to write back.
        d.sync();
        let (flushes_quiet, _) = d.nvm().stats().snapshot();
        assert_eq!(flushes_quiet, flushes_initial, "quiet epochs flush nothing");
        // A small burst: write-back is proportional to the burst only.
        let e = d.current_epoch();
        for k in 0..10 {
            d.alloc_payload(0, 100_000 + k, k, e);
        }
        d.sync();
        let (flushes_burst, _) = d.nvm().stats().snapshot();
        assert_eq!(flushes_burst - flushes_quiet, 10);
    }

    #[test]
    fn multi_arena_payloads_recover_together() {
        let mgr = TxManager::with_max_threads(8);
        let d = PersistenceDomain::with_backend(mgr, NvmCostModel::ZERO, DomainBackend::Arena);
        let e = d.current_epoch();
        for tid in 0..8 {
            d.alloc_payload(tid, tid as u64, tid as u64 * 10, e);
        }
        d.sync();
        let rec = d.recover_u64();
        assert_eq!(rec.len(), 8);
        for tid in 0..8u64 {
            assert_eq!(rec.get(&tid), Some(&(tid * 10)));
        }
        assert_eq!(d.stats().live_payloads, 8);
        assert_eq!(d.stats().allocated_slots, 8);
    }

    #[test]
    fn recovery_horizon_never_outruns_write_back() {
        // Regression for the recover/advance race: the epoch *clock* is
        // advanced before the write-back runs, so a horizon derived from
        // `current_epoch()` would claim durability for epochs that were
        // never written back.  Bumping the raw clock (as a preempted
        // advancer does between its two steps) must not move the recovery
        // horizon.
        for d in both_backends() {
            let e = d.current_epoch();
            d.alloc_payload(0, 1, 10, e);
            // The clock alone races ahead; no write-back has happened.
            d.manager().advance_epoch();
            d.manager().advance_epoch();
            let (rec, horizon) = d.recover_with_horizon();
            assert_eq!(
                horizon,
                0,
                "{:?}: horizon must track write-back",
                d.backend()
            );
            assert!(
                rec.is_empty(),
                "{:?}: claimed durability without write-back: {rec:?}",
                d.backend()
            );
            // Once the domain itself advances, the write-back runs and the
            // payload becomes recoverable.
            d.advance_epoch();
            let (rec, horizon) = d.recover_with_horizon();
            assert_eq!(horizon, d.stats().persisted_epoch);
            assert_eq!(rec.get(&1), Some(&Value::U64(10)));
        }
    }

    #[test]
    fn recover_races_advancer_without_claiming_unflushed_epochs() {
        // The satellite-1 regression proper: hammer recover() while a
        // µs-period advancer runs and an allocator churns payloads.  Each
        // payload's value records its birth tag, so any recovered entry
        // tagged at/after the returned horizon is a claim of durability for
        // an epoch whose write-back had not happened.
        let mgr = TxManager::with_max_threads(4);
        let d = PersistenceDomain::new(mgr, NvmCostModel::ZERO);
        let advancer = EpochAdvancer::spawn(Arc::clone(&d), std::time::Duration::from_micros(1));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let d2 = &d;
            let stop = &stop;
            s.spawn(move || {
                // Retire each previous allocation so the arena stays small:
                // the recovery scans below are O(arena slots), and an
                // unbounded allocator makes the racing loop quadratic on a
                // slow box.
                let mut pending: Option<PayloadId> = None;
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let e = d2.current_epoch();
                    let id = d2.alloc_payload(0, k, e, e);
                    if let Some(old) = pending.take() {
                        d2.retire_payload(old, d2.current_epoch());
                    }
                    pending = Some(id);
                    k += 1;
                }
            });
            let mut last_horizon = 0;
            for _ in 0..500 {
                let (rec, horizon) = d.recover_with_horizon();
                assert!(horizon >= last_horizon, "horizon must be monotone");
                last_horizon = horizon;
                for (k, birth_tag) in rec {
                    let birth_tag = birth_tag.as_u64().unwrap();
                    assert!(
                        birth_tag < horizon,
                        "key {k} born in epoch {birth_tag} recovered at horizon {horizon}"
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        drop(advancer);
    }

    #[test]
    fn stale_tags_are_repaired_by_retag() {
        // The standalone-operation race: a payload tagged in epoch `e` whose
        // index update linearizes after the clock moved must be re-tagged
        // with the later epoch, or it becomes recoverable at a horizon its
        // operation is not part of.
        let d = domain();
        let e = d.current_epoch();
        let id = d.alloc_payload(0, 1, 10, e);
        // The clock moves across the (conceptual) index update; the fix
        // re-tags the payload with the post-linearization epoch.
        d.advance_epoch();
        let now = d.current_epoch();
        d.retag_birth(id, e, now);
        d.advance_epoch(); // horizon crosses e, but not `now`
        let (rec, horizon) = d.recover_with_horizon();
        assert!(horizon > e);
        assert!(
            !rec.contains_key(&1),
            "re-tagged payload recovered before its new epoch is durable"
        );
        d.sync();
        assert_eq!(
            d.recover_u64().get(&1),
            Some(&10),
            "durable after the new tag"
        );

        // Same for retirements: the removal linearized in `now2`, so at a
        // horizon between the stale tag and `now2` the payload must still be
        // visible.
        let stale = d.current_epoch();
        d.advance_epoch();
        let now2 = d.current_epoch();
        d.retire_payload(id, stale);
        d.retag_retire(id, stale, now2);
        d.advance_epoch(); // horizon crosses `stale`
        let (rec, horizon) = d.recover_with_horizon();
        assert!(horizon > stale && horizon <= now2);
        assert_eq!(
            rec.get(&1),
            Some(&Value::U64(10)),
            "retirement claimed durable before its write-back epoch"
        );
        d.sync();
        assert!(!d.recover().contains_key(&1));
    }

    #[test]
    fn blob_values_roundtrip_through_all_size_classes() {
        // One value per size class plus the boundaries: word, small inline,
        // large inline, and overflow-chain spills of 1, many, and max-ish
        // blocks — on both backends.
        let lens = [0usize, 5, 8, 64, 65, 448, 449, 4096, 100_000];
        for d in both_backends() {
            let e = d.current_epoch();
            for (k, len) in lens.iter().enumerate() {
                let bytes: Vec<u8> = (0..*len).map(|i| (i * 13 + k) as u8).collect();
                d.alloc_value(0, k as u64, &Value::from_bytes(&bytes), e);
            }
            d.sync();
            let rec = d.recover();
            assert_eq!(rec.len(), lens.len(), "{:?}", d.backend());
            for (k, len) in lens.iter().enumerate() {
                let bytes: Vec<u8> = (0..*len).map(|i| (i * 13 + k) as u8).collect();
                assert_eq!(
                    rec.get(&(k as u64)),
                    Some(&Value::from_bytes(&bytes)),
                    "len {len} on {:?}",
                    d.backend()
                );
            }
        }
    }

    #[test]
    fn spilled_records_recycle_their_overflow_chain() {
        // A retired oversized record must return its head slot *and* its
        // overflow blocks; a later spill of similar size reuses both instead
        // of growing the slabs.
        let d = domain();
        let big: Vec<u8> = (0..10_000).map(|i| i as u8).collect();
        let e = d.current_epoch();
        let id = d.alloc_value(0, 1, &Value::from_bytes(&big), e);
        d.sync();
        d.retire_payload(id, d.current_epoch());
        d.sync();
        let stats = d.stats();
        assert_eq!(stats.free_slots, 1);
        // Reallocate a slightly smaller spill: same head slot, recycled
        // blocks, no slab growth.
        let big2: Vec<u8> = (0..9_000).map(|i| (i * 3) as u8).collect();
        let id2 = d.alloc_value(0, 2, &Value::from_bytes(&big2), d.current_epoch());
        assert_eq!(id2, id, "head slot must be recycled");
        assert_eq!(d.stats().allocated_slots, stats.allocated_slots);
        d.sync();
        let rec = d.recover();
        assert_eq!(rec.get(&2), Some(&Value::from_bytes(&big2)));
        assert!(!rec.contains_key(&1));
    }

    #[test]
    fn epoch_validation_is_enabled_on_the_manager() {
        let mgr = TxManager::new();
        assert!(!mgr.epoch_validation_enabled());
        let _d = PersistenceDomain::new(Arc::clone(&mgr), NvmCostModel::ZERO);
        assert!(mgr.epoch_validation_enabled());
    }

    #[test]
    fn advancer_ticks_in_background() {
        let d = domain();
        let before = d.current_epoch();
        {
            let _adv = EpochAdvancer::spawn(Arc::clone(&d), std::time::Duration::from_millis(5));
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        assert!(d.current_epoch() > before);
    }

    #[test]
    fn concurrent_alloc_retire_across_arenas_keeps_accounting() {
        // 8 threads allocate and retire in their own arenas while an
        // advancer recycles; afterwards every retired slot is free exactly
        // once and every survivor is recoverable.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 2_000;
        let mgr = TxManager::with_max_threads(THREADS);
        let d = PersistenceDomain::new(mgr, NvmCostModel::ZERO);
        let advancer = EpochAdvancer::spawn(Arc::clone(&d), std::time::Duration::from_micros(20));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let d = &d;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let e = d.current_epoch();
                        let key = ((t as u64) << 32) | i;
                        let id = d.alloc_payload(t, key, i, e);
                        if i % 2 == 0 {
                            d.retire_payload(id, d.current_epoch());
                        }
                    }
                });
            }
        });
        drop(advancer);
        d.sync();
        d.sync();
        let stats = d.stats();
        let expected_live = (THREADS as u64 * PER_THREAD / 2) as usize;
        assert_eq!(stats.live_payloads, expected_live);
        assert_eq!(
            stats.free_slots + expected_live,
            stats.allocated_slots,
            "every non-live slot must be free exactly once: {stats:?}"
        );
        assert_eq!(d.recover().len(), expected_live);
    }
}
