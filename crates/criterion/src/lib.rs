//! A self-contained, offline drop-in subset of the `criterion` benchmarking
//! API.
//!
//! This container cannot reach crates.io, so the workspace ships this shim
//! instead of the real crate.  It implements exactly the surface the `bench`
//! crate uses — [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_custom`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — with the same semantics (warm-up, fixed sample
//! count, per-iteration statistics), and adds one thing the perf roadmap
//! needs: every run appends its results to a machine-readable JSON report
//! (`BENCH_<target>.json`, e.g. `BENCH_micro.json` for the `micro` bench
//! target), so successive PRs can diff throughput numbers mechanically.
//!
//! Output location: the file is written to the path named by the
//! `BENCH_JSON` environment variable if set, otherwise to
//! `BENCH_<target>.json` in the process working directory (for `cargo
//! bench`, the package root).

use std::time::{Duration, Instant};

/// Re-exports mirroring `criterion::black_box`.
///
/// An identity function that hides its argument from the optimizer, so that
/// benchmarked expressions are not constant-folded away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Statistics of one completed benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Number of measurement samples taken.
    pub samples: usize,
    /// Total iterations across all samples.
    pub iterations: u64,
    /// Mean wall time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Median of the per-sample means, in nanoseconds.
    pub median_ns: f64,
    /// Fastest per-sample mean, in nanoseconds.
    pub min_ns: f64,
    /// Slowest per-sample mean, in nanoseconds.
    pub max_ns: f64,
}

impl BenchResult {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"samples\":{},\"iterations\":{},",
                "\"mean_ns\":{:.2},\"median_ns\":{:.2},\"min_ns\":{:.2},\"max_ns\":{:.2}}}"
            ),
            json_string(&self.name),
            self.samples,
            self.iterations,
            self.mean_ns,
            self.median_ns,
            self.min_ns,
            self.max_ns,
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(200),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and records (and prints) its statistics.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up phase: also used to estimate the per-iteration cost so the
        // measurement phase can pick a sensible batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            mode: Mode::Batch(1),
            elapsed: Duration::ZERO,
            iters_done: 0,
        };
        while warm_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            bencher.iters_done = 0;
            f(&mut bencher);
            warm_iters += bencher.iters_done.max(1);
        }
        let warm_elapsed = warm_start.elapsed();
        let est_ns_per_iter = (warm_elapsed.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Pick a batch size so each sample lasts roughly
        // measurement_time / sample_size.
        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((per_sample_ns / est_ns_per_iter).round() as u64).max(1);

        let mut sample_means = Vec::with_capacity(self.sample_size);
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                mode: Mode::Batch(batch),
                elapsed: Duration::ZERO,
                iters_done: 0,
            };
            f(&mut b);
            let iters = b.iters_done.max(1);
            total_iters += iters;
            sample_means.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        sample_means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean_ns = sample_means.iter().sum::<f64>() / sample_means.len() as f64;
        let median_ns = sample_means[sample_means.len() / 2];
        let result = BenchResult {
            name: name.to_string(),
            samples: self.sample_size,
            iterations: total_iters,
            mean_ns,
            median_ns,
            min_ns: sample_means[0],
            max_ns: *sample_means.last().unwrap(),
        };
        println!(
            "{:<44} time: [{:>12.1} ns/iter]  (median {:.1}, min {:.1}, max {:.1}, {} samples)",
            result.name,
            result.mean_ns,
            result.median_ns,
            result.min_ns,
            result.max_ns,
            result.samples
        );
        self.results.push(result);
        self
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the JSON report for this run.
    ///
    /// `target` is the bench-target name (used for the default
    /// `BENCH_<target>.json` file name); the `BENCH_JSON` environment
    /// variable overrides the full path.
    pub fn final_summary(&self, target: &str) {
        let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| format!("BENCH_{target}.json"));
        let entries: Vec<String> = self.results.iter().map(BenchResult::to_json).collect();
        let body = format!(
            "{{\n  \"target\": {},\n  \"results\": [\n    {}\n  ]\n}}\n",
            json_string(target),
            entries.join(",\n    ")
        );
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {} benchmark results to {path}", self.results.len()),
            Err(e) => eprintln!("failed to write benchmark report {path}: {e}"),
        }
    }
}

enum Mode {
    /// Run the closure `n` times per `iter` call (driver-chosen batch).
    Batch(u64),
}

/// Timing handle passed to benchmark closures (subset of
/// `criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times `f`, running it a driver-chosen number of times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let Mode::Batch(n) = self.mode;
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters_done += n;
    }

    /// Hands the iteration count to `f`, which must return the measured wall
    /// time for exactly that many iterations (mirrors
    /// `criterion::Bencher::iter_custom`).  Use this when the timed region
    /// spawns threads or needs its own clock placement.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let Mode::Batch(n) = self.mode;
        self.elapsed += f(n);
        self.iters_done += n;
    }

    /// Like [`Bencher::iter_custom`], but for timed regions that enforce
    /// their own *minimum* amount of work (e.g. a floor of transactions per
    /// spawned thread so multi-thread samples are not noise): `f` receives
    /// the requested iteration count and returns `(elapsed, executed)` for
    /// the work it actually ran.  The recorded per-iteration mean is
    /// `elapsed / executed` — exact, with no scaling artifacts — and the
    /// report's `iterations` field reflects the work that truly happened
    /// rather than the driver's request.
    pub fn iter_custom_counted<F: FnMut(u64) -> (Duration, u64)>(&mut self, mut f: F) {
        let Mode::Batch(n) = self.mode;
        let (elapsed, executed) = f(n);
        self.elapsed += elapsed;
        self.iters_done += executed.max(1);
    }
}

/// Declares a group of benchmarks (subset of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` (subset of `criterion::criterion_main!`).
/// After all groups run, the collected results are written to the JSON
/// report named after the bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                let criterion = $group();
                criterion.final_summary(env!("CARGO_CRATE_NAME"));
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_sane_stats() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let r = &c.results()[0];
        assert_eq!(r.name, "noop");
        assert_eq!(r.samples, 5);
        assert!(r.iterations > 0);
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn iter_custom_is_trusted_verbatim() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(100 * iters))
        });
        let r = &c.results()[0];
        assert!((r.mean_ns - 100.0).abs() < 1.0, "mean {} != 100", r.mean_ns);
    }

    #[test]
    fn json_report_is_written() {
        let dir = std::env::temp_dir().join("criterion-shim-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_test.json");
        std::env::set_var("BENCH_JSON", &path);
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("a/b", |b| b.iter(|| black_box(2 * 2)));
        c.final_summary("test");
        std::env::remove_var("BENCH_JSON");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\":\"a/b\""));
        assert!(body.contains("\"mean_ns\""));
    }
}
